//! Encrypted predicates (trapdoors).
//!
//! A trapdoor is what the data owner sends instead of a plaintext predicate.
//! Per the paper's model the service provider observes: a stable identity,
//! the target table and attribute, and whether it is a comparison or a
//! BETWEEN (the two are processed by different algorithms) — but never the
//! operator direction or the parameter values, which travel encrypted.

use crate::schema::AttrId;
use prkb_crypto::cipher::CIPHERTEXT_LEN;
use serde::{Deserialize, Serialize};

/// The SP-visible shape of a trapdoor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredicateKind {
    /// One of `>`, `<`, `≥`, `≤` — indistinguishable to SP (paper §3.1).
    Comparison,
    /// `BETWEEN lo AND hi` (paper Appendix A).
    Between,
}

/// An encrypted predicate as observed by the service provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedPredicate {
    id: u64,
    table: String,
    attr: AttrId,
    kind: PredicateKind,
    /// Concatenated fixed-width ciphertext words holding the hidden
    /// operator code and parameter(s).
    payload: Vec<u8>,
}

impl EncryptedPredicate {
    /// Assembles a trapdoor (owner side; `payload` words already encrypted).
    pub(crate) fn assemble(
        id: u64,
        table: String,
        attr: AttrId,
        kind: PredicateKind,
        payload: Vec<u8>,
    ) -> Self {
        debug_assert_eq!(payload.len() % CIPHERTEXT_LEN, 0);
        EncryptedPredicate {
            id,
            table,
            attr,
            kind,
            payload,
        }
    }

    /// Unique trapdoor identity (SP-visible; lets caches key on it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Table this trapdoor was issued for.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Attribute the predicate concerns (SP-visible per the paper).
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Comparison vs BETWEEN (SP-visible per the paper).
    pub fn kind(&self) -> PredicateKind {
        self.kind
    }

    /// Encrypted payload words (consumed by the trusted machine).
    pub(crate) fn payload_words(&self) -> impl Iterator<Item = &[u8]> {
        self.payload.chunks_exact(CIPHERTEXT_LEN)
    }

    /// Storage footprint in bytes when the service provider retains the
    /// trapdoor (PRKB keeps separator trapdoors for insert handling; this
    /// feeds the paper's Table 3 accounting).
    pub fn storage_bytes(&self) -> usize {
        8 // id
            + self.table.len()
            + 4 // attr
            + 1 // kind
            + self.payload.len()
    }

    /// Appends the canonical wire encoding (used by index snapshots).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.table.len() as u32).to_le_bytes());
        out.extend_from_slice(self.table.as_bytes());
        out.extend_from_slice(&self.attr.to_le_bytes());
        out.push(match self.kind {
            PredicateKind::Comparison => 0,
            PredicateKind::Between => 1,
        });
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Decodes a trapdoor from `bytes`, returning it and the bytes consumed.
    /// Returns `None` on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        let mut pos = 0usize;
        let take = |bytes: &[u8], pos: &mut usize, n: usize| -> Option<Vec<u8>> {
            let s = bytes.get(*pos..*pos + n)?.to_vec();
            *pos += n;
            Some(s)
        };
        let id = u64::from_le_bytes(take(bytes, &mut pos, 8)?.try_into().ok()?);
        let tlen = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?) as usize;
        let table = String::from_utf8(take(bytes, &mut pos, tlen)?).ok()?;
        let attr = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?);
        let kind = match *bytes.get(pos)? {
            0 => PredicateKind::Comparison,
            1 => PredicateKind::Between,
            _ => return None,
        };
        pos += 1;
        let plen = u32::from_le_bytes(take(bytes, &mut pos, 4)?.try_into().ok()?) as usize;
        if !plen.is_multiple_of(CIPHERTEXT_LEN) {
            return None;
        }
        let payload = take(bytes, &mut pos, plen)?;
        Some((
            EncryptedPredicate {
                id,
                table,
                attr,
                kind,
                payload,
            },
            pos,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let p = EncryptedPredicate::assemble(
            99,
            "payroll".into(),
            3,
            PredicateKind::Between,
            vec![7u8; 2 * CIPHERTEXT_LEN],
        );
        let mut buf = vec![0xAA; 3]; // preceding junk
        let start = buf.len();
        p.encode_into(&mut buf);
        let (q, consumed) = EncryptedPredicate::decode(&buf[start..]).expect("roundtrip");
        assert_eq!(q, p);
        assert_eq!(consumed, buf.len() - start);
        // Truncations fail cleanly at every length.
        for cut in 0..consumed {
            assert!(EncryptedPredicate::decode(&buf[start..start + cut]).is_none(), "cut {cut}");
        }
        // Bad kind byte.
        let mut bad = buf[start..].to_vec();
        let kind_off = 8 + 4 + "payroll".len() + 4;
        bad[kind_off] = 9;
        assert!(EncryptedPredicate::decode(&bad).is_none());
    }

    #[test]
    fn accessors_and_storage() {
        let p = EncryptedPredicate::assemble(
            7,
            "t".into(),
            2,
            PredicateKind::Comparison,
            vec![0u8; 2 * CIPHERTEXT_LEN],
        );
        assert_eq!(p.id(), 7);
        assert_eq!(p.table(), "t");
        assert_eq!(p.attr(), 2);
        assert_eq!(p.kind(), PredicateKind::Comparison);
        assert_eq!(p.payload_words().count(), 2);
        assert_eq!(p.storage_bytes(), 8 + 1 + 4 + 1 + 2 * CIPHERTEXT_LEN);
    }
}
