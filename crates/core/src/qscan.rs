//! `QScan` — Algorithm 2 of the paper.
//!
//! Confirms the exact selection result inside the NS-pair found by
//! [`crate::qfilter`], with the paper's *early stop* strategy: the first
//! partition is scanned fully; if it turns out non-homogeneous, the second
//! partition's tuples are all implied by its QFilter sample and cost zero
//! further QPF uses.

use crate::pop::Pop;
use crate::qfilter::FilterResult;
use prkb_edbms::{OracleError, SelectionOracle, TupleId};

/// A discovered split of a non-homogeneous partition (Lemma 4.5, Case 2).
#[derive(Debug, Clone)]
pub struct Split {
    /// Rank of the non-homogeneous partition.
    pub rank: usize,
    /// Members with QPF output 1 (`P_sT`).
    pub true_half: Vec<TupleId>,
    /// Members with QPF output 0 (`P_sF`).
    pub false_half: Vec<TupleId>,
}

/// Outcome of `QScan`.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Satisfying tuples among the NS partitions (`T_WNS`).
    pub winners: Vec<TupleId>,
    /// The split, when the trapdoor was inequivalent to all retained ones.
    pub split: Option<Split>,
    /// Full-scan label of the partition at rank `a` when it proved
    /// homogeneous (`None` if it split).
    pub label_a_full: Option<bool>,
    /// Full-scan / inferred label of the partition at rank `b`
    /// (`None` if it split, or if `a == b`).
    pub label_b_full: Option<bool>,
}

/// Runs `QScan` over the NS pair in `filter`.
///
/// Infallible wrapper over [`try_qscan`].
///
/// # Panics
/// Panics on oracle failure — fault-tolerant paths use [`try_qscan`].
pub fn qscan<O: SelectionOracle>(
    pop: &Pop,
    oracle: &O,
    pred: &O::Pred,
    filter: &FilterResult,
) -> ScanResult {
    match try_qscan(pop, oracle, pred, filter) {
        Ok(r) => r,
        Err(e) => panic!("oracle failure: {e}"),
    }
}

/// Runs `QScan` over the NS pair in `filter`.
///
/// Returns an empty result if the POP was empty (no NS pair).
///
/// # Errors
/// Propagates the first oracle failure. `QScan` only reads the POP — the
/// split it discovers is *returned*, not applied, so a failed scan leaves
/// no knowledge to roll back.
pub fn try_qscan<O: SelectionOracle>(
    pop: &Pop,
    oracle: &O,
    pred: &O::Pred,
    filter: &FilterResult,
) -> Result<ScanResult, OracleError> {
    let Some((a, b)) = filter.ns else {
        return Ok(ScanResult {
            winners: Vec::new(),
            split: None,
            label_a_full: None,
            label_b_full: None,
        });
    };

    // Scan P_a fully.
    let (a_true, a_false) = scan_partition(pop, oracle, pred, a)?;

    if !a_true.is_empty() && !a_false.is_empty() {
        // P_a is non-homogeneous: s = a; early stop. P_b is implied
        // homogeneous with its sampled label. The true half appears both as
        // winners and as the split record, so this one clone is inherent.
        let mut winners = a_true.clone();
        let mut label_b_full = None;
        if b != a {
            if filter.label_b {
                winners.extend_from_slice(pop.members_at(b));
            }
            label_b_full = Some(filter.label_b);
        }
        return Ok(ScanResult {
            winners,
            split: Some(Split {
                rank: a,
                true_half: a_true,
                false_half: a_false,
            }),
            label_a_full: None,
            label_b_full,
        });
    }

    // P_a homogeneous: its true half is consumed only as winners, so move
    // it rather than clone.
    let label_a_full = Some(!a_true.is_empty());
    let a_true_len = a_true.len();
    let mut winners = a_true;
    if a == b {
        // Single-partition POP scanned homogeneous: nothing further.
        return Ok(ScanResult {
            winners,
            split: None,
            label_a_full,
            label_b_full: None,
        });
    }

    // P_a homogeneous: scan P_b as well.
    let (b_true, b_false) = scan_partition(pop, oracle, pred, b)?;
    winners.extend_from_slice(&b_true);
    let split = if !b_true.is_empty() && !b_false.is_empty() {
        Some(Split {
            rank: b,
            true_half: b_true,
            false_half: b_false,
        })
    } else {
        None
    };
    let label_b_full = if split.is_some() {
        None
    } else {
        Some(winners.len() > a_true_len)
    };
    Ok(ScanResult {
        winners,
        split,
        label_a_full,
        label_b_full,
    })
}

/// Fully scans the partition at `rank` as one oracle batch (every member is
/// evaluated unconditionally, so batching cannot change the QPF count) and
/// separates members by verdict.
fn scan_partition<O: SelectionOracle>(
    pop: &Pop,
    oracle: &O,
    pred: &O::Pred,
    rank: usize,
) -> Result<(Vec<TupleId>, Vec<TupleId>), OracleError> {
    let members = pop.members_at(rank);
    let mut verdicts = Vec::new();
    oracle.try_eval_batch(pred, members, &mut verdicts)?;
    let mut t_half = Vec::new();
    let mut f_half = Vec::new();
    for (&t, v) in members.iter().zip(verdicts) {
        if v {
            t_half.push(t);
        } else {
            f_half.push(t);
        }
    }
    Ok((t_half, f_half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qfilter::qfilter;
    use prkb_edbms::testing::PlainOracle;
    use prkb_edbms::{ComparisonOp, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ascending_pop(n: usize, parts: usize) -> (Pop, PlainOracle) {
        let values: Vec<u64> = (0..n as u64).collect();
        let oracle = PlainOracle::single_column(values);
        let mut pop = Pop::init(n);
        let width = n / parts;
        for i in 1..parts {
            let members = pop.members_at(i - 1).to_vec();
            let (first, second): (Vec<_>, Vec<_>) =
                members.into_iter().partition(|&t| (t as usize) < i * width);
            pop.split_at(i - 1, first, second);
        }
        (pop, oracle)
    }

    #[test]
    fn inequivalent_predicate_splits_and_selects() {
        let (pop, oracle) = ascending_pop(100, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let pred = Predicate::cmp(0, ComparisonOp::Lt, 37);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        let s = qscan(&pop, &oracle, &pred, &f);
        let split = s.split.expect("cut at 37 is inside partition 3");
        assert_eq!(split.rank, 3);
        let mut th = split.true_half.clone();
        th.sort_unstable();
        assert_eq!(th, (30..37).collect::<Vec<_>>());
        let mut fh = split.false_half.clone();
        fh.sort_unstable();
        assert_eq!(fh, (37..40).collect::<Vec<_>>());
        // Full selection = winners(filter) + winners(scan).
        let mut result = f.winner_tuples(&pop);
        result.extend_from_slice(&s.winners);
        result.sort_unstable();
        assert_eq!(result, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn early_stop_spends_no_qpf_on_second_partition() {
        let (pop, oracle) = ascending_pop(100, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let pred = Predicate::cmp(0, ComparisonOp::Lt, 37);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        let (a, b) = f.ns.unwrap();
        oracle.reset_uses();
        let s = qscan(&pop, &oracle, &pred, &f);
        if s.split.as_ref().map(|sp| sp.rank) == Some(a) && a != b {
            // Early stop: only P_a scanned.
            assert_eq!(oracle.qpf_uses() as usize, pop.members_at(a).len());
        } else {
            // P_a was homogeneous: both scanned.
            assert_eq!(
                oracle.qpf_uses() as usize,
                pop.members_at(a).len() + pop.members_at(b).len()
            );
        }
    }

    #[test]
    fn equivalent_predicate_no_split() {
        let (pop, oracle) = ascending_pop(100, 10);
        let mut rng = StdRng::seed_from_u64(2);
        // Cut exactly on an existing partition boundary (value 30): both NS
        // partitions scan homogeneous.
        let pred = Predicate::cmp(0, ComparisonOp::Lt, 30);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        let s = qscan(&pop, &oracle, &pred, &f);
        assert!(s.split.is_none(), "boundary-aligned cut must not split");
        assert!(s.label_a_full.is_some());
        let mut result = f.winner_tuples(&pop);
        result.extend_from_slice(&s.winners);
        result.sort_unstable();
        assert_eq!(result, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn boundary_case_select_all() {
        let (pop, oracle) = ascending_pop(100, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let pred = Predicate::cmp(0, ComparisonOp::Ge, 0);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        assert!(f.boundary);
        let s = qscan(&pop, &oracle, &pred, &f);
        assert!(s.split.is_none());
        let mut result = f.winner_tuples(&pop);
        result.extend_from_slice(&s.winners);
        result.sort_unstable();
        assert_eq!(result.len(), 100);
    }

    #[test]
    fn boundary_case_select_none() {
        let (pop, oracle) = ascending_pop(100, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let pred = Predicate::cmp(0, ComparisonOp::Gt, 1000);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        let s = qscan(&pop, &oracle, &pred, &f);
        assert!(s.split.is_none());
        assert!(s.winners.is_empty());
        assert!(f.winner_tuples(&pop).is_empty());
    }

    #[test]
    fn single_partition_full_scan() {
        let (pop, oracle) = ascending_pop(20, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let pred = Predicate::cmp(0, ComparisonOp::Lt, 7);
        let f = qfilter(&pop, &oracle, &pred, &mut rng);
        let s = qscan(&pop, &oracle, &pred, &f);
        let split = s.split.expect("interior cut splits the only partition");
        assert_eq!(split.rank, 0);
        assert_eq!(split.true_half.len(), 7);
        assert_eq!(split.false_half.len(), 13);
        assert_eq!(oracle.qpf_uses(), 20);
    }
}
