//! Offline typecheck stub for `criterion` (API surface used by the benches).
//! Runs each routine a handful of times and prints nothing fancy.

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

pub trait IntoBenchmarkId {
    fn into_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { iters: 1 };
        let start = Instant::now();
        f(&mut b);
        eprintln!(
            "[stub-bench] {}/{}: {:?}",
            self.name,
            id,
            start.elapsed()
        );
    }

    pub fn bench_function<ID: IntoBenchmarkId>(
        &mut self,
        id: ID,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized>(
        &mut self,
        id: ID,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup { _c: self, name }
    }

    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(name, f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg.configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
