//! Machine-readable perf trajectory: `BENCH_<exp>.json` emission.
//!
//! Every repro experiment that measures per-query costs can emit its rows
//! as a stable JSON document (`prkb-bench/v1`), so the performance
//! trajectory of the repository finally lives in version-controllable,
//! diffable artifacts instead of ad-hoc text reports. The companion
//! [`crate::compare`] module diffs two such files and gates CI.
//!
//! ## Schema (`prkb-bench/v1`)
//!
//! ```json
//! {"schema":"prkb-bench/v1","experiment":"fig8","scale":"ci",
//!  "rows":[{"id":"q1","qpf_uses":100000,"ms":12.5,"k":1,"n":50000,"threads":1}]}
//! ```
//!
//! * `id` — stable row key within the experiment (`q<i>`, `n<n>`, `sel<p>`…);
//! * `qpf_uses` — the paper's primary cost metric, fully deterministic for
//!   a given seed and scale (safe to gate in CI);
//! * `ms` — wall-clock milliseconds (machine-dependent; gate only with a
//!   generous tolerance, or not at all);
//! * `k` — PRKB partitions at measurement time (summed over attributes);
//! * `n` — dataset tuples; `threads` — worker threads in effect.
//!
//! Field names never change meaning; new fields may be appended.

use crate::json::{escape, Json};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One measured row of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Stable row key within the experiment (e.g. `q17`, `n100000`).
    pub id: String,
    /// QPF uses spent (deterministic per seed).
    pub qpf_uses: u64,
    /// Wall-clock milliseconds (machine-dependent).
    pub ms: f64,
    /// PRKB partitions at measurement time.
    pub k: u64,
    /// Dataset size in tuples.
    pub n: u64,
    /// Worker threads in effect.
    pub threads: u64,
}

/// A whole trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Experiment name (`fig8`, `fig9`, …).
    pub experiment: String,
    /// Scale slug (`ci` / `default` / `paper`).
    pub scale: String,
    /// Measured rows, in experiment order.
    pub rows: Vec<BenchRow>,
}

impl BenchFile {
    /// Renders the stable `prkb-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"prkb-bench/v1\",\"experiment\":");
        s.push_str(&escape(&self.experiment));
        s.push_str(",\"scale\":");
        s.push_str(&escape(&self.scale));
        s.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":{},\"qpf_uses\":{},\"ms\":{:.6},\"k\":{},\"n\":{},\"threads\":{}}}",
                escape(&r.id),
                r.qpf_uses,
                r.ms,
                r.k,
                r.n,
                r.threads
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a `prkb-bench/v1` document.
    ///
    /// # Errors
    /// Malformed JSON, wrong schema tag, or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<BenchFile, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != "prkb-bench/v1" {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let experiment = v
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing experiment")?
            .to_string();
        let scale = v
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("missing scale")?
            .to_string();
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing rows")?
            .iter()
            .map(|r| {
                Ok(BenchRow {
                    id: r
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or("row missing id")?
                        .to_string(),
                    qpf_uses: r
                        .get("qpf_uses")
                        .and_then(Json::as_u64)
                        .ok_or("row missing qpf_uses")?,
                    ms: r.get("ms").and_then(Json::as_f64).ok_or("row missing ms")?,
                    k: r.get("k").and_then(Json::as_u64).unwrap_or(0),
                    n: r.get("n").and_then(Json::as_u64).unwrap_or(0),
                    threads: r.get("threads").and_then(Json::as_u64).unwrap_or(1),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchFile {
            experiment,
            scale,
            rows,
        })
    }

    /// Writes `BENCH_<experiment>.json` into `dir`; returns the path.
    ///
    /// # Errors
    /// Filesystem failures.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }

    /// Looks a row up by id.
    pub fn row(&self, id: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.id == id)
    }
}

/// The output directory for trajectory files: `PRKB_BENCH_DIR`, or the
/// current directory when unset.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("PRKB_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The worker-thread count in effect for this process: `PRKB_THREADS`, or 1
/// (sequential) when unset/unparsable.
pub fn effective_threads() -> u64 {
    std::env::var("PRKB_THREADS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchFile {
        BenchFile {
            experiment: "fig8".into(),
            scale: "ci".into(),
            rows: vec![
                BenchRow {
                    id: "q1".into(),
                    qpf_uses: 100_000,
                    ms: 12.5,
                    k: 1,
                    n: 50_000,
                    threads: 1,
                },
                BenchRow {
                    id: "q60".into(),
                    qpf_uses: 1_234,
                    ms: 0.75,
                    k: 93,
                    n: 50_000,
                    threads: 4,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let f = sample();
        let text = f.to_json();
        assert!(text.starts_with("{\"schema\":\"prkb-bench/v1\""));
        let back = BenchFile::from_json(&text).unwrap();
        assert_eq!(back.experiment, "fig8");
        assert_eq!(back.scale, "ci");
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.row("q60").unwrap().qpf_uses, 1_234);
        assert_eq!(back.row("q60").unwrap().k, 93);
        assert!((back.row("q1").unwrap().ms - 12.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = BenchFile::from_json("{\"schema\":\"other/v9\",\"rows\":[]}").unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn write_creates_named_file() {
        let dir = std::env::temp_dir().join(format!("prkb_traj_{}", std::process::id()));
        let path = sample().write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_fig8.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(BenchFile::from_json(text.trim()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
