//! Index persistence.
//!
//! A service provider restarts; PRKB must not be rebuilt from 600 full-scan
//! queries. The snapshot is the index's canonical serialized form — the very
//! representation [`Knowledge::storage_bytes`] accounts (one rank per tuple
//! slot, the retained separator trapdoors, the overflow entries) plus a
//! small header — so `snapshot.len()` and the Table 3 numbers agree up to
//! the header.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic "PRKB" | version u16 | k u64 | n_slots u64
//! ranks: n_slots × u32 (u32::MAX = unplaced slot)
//! boundaries: (k-1) × { tag u8 | [payload] }
//!     tag 0 = no separator retained
//!     tag 1 = comparison, left_label=false   tag 2 = comparison, left_label=true
//!     tag 3 = BETWEEN edge interior-left     tag 4 = BETWEEN edge interior-right
//!     payload = predicate wire encoding (absent for tag 0)
//! overflow: count u32, then count × { tuple u32 | lo u64 | hi u64 }
//! ```

use crate::knowledge::{BetweenEdge, Knowledge, OverflowEntry, Separator};
use crate::pop::Pop;
use crate::traits::SpPredicate;
use prkb_edbms::{ComparisonOp, EncryptedPredicate, Predicate};
use std::fmt;

const MAGIC: &[u8; 4] = b"PRKB";
const VERSION: u16 = 1;

/// Errors raised when loading a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing/incorrect magic or version.
    BadHeader,
    /// The byte stream ended or a field failed to parse.
    Truncated(&'static str),
    /// The decoded structure violates a POP invariant.
    Inconsistent(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "not a PRKB snapshot (bad magic/version)"),
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated at {what}"),
            SnapshotError::Inconsistent(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Wire codec for the predicate type retained in separators.
pub trait WireCodec: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decodes one value, returning it and the bytes consumed.
    fn decode(bytes: &[u8]) -> Option<(Self, usize)>;
}

impl WireCodec for EncryptedPredicate {
    fn encode_into(&self, out: &mut Vec<u8>) {
        EncryptedPredicate::encode_into(self, out);
    }

    fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        EncryptedPredicate::decode(bytes)
    }
}

/// Plain predicates encode as `kind | attr | a | b` (test oracle snapshots).
impl WireCodec for Predicate {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Predicate::Comparison { attr, op, bound } => {
                out.push(0);
                out.extend_from_slice(&attr.to_le_bytes());
                out.extend_from_slice(&op.code().to_le_bytes());
                out.extend_from_slice(&bound.to_le_bytes());
            }
            Predicate::Between { attr, lo, hi } => {
                out.push(1);
                out.extend_from_slice(&attr.to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        let kind = *bytes.first()?;
        let attr = u32::from_le_bytes(bytes.get(1..5)?.try_into().ok()?);
        let a = u64::from_le_bytes(bytes.get(5..13)?.try_into().ok()?);
        let b = u64::from_le_bytes(bytes.get(13..21)?.try_into().ok()?);
        let p = match kind {
            0 => Predicate::cmp(attr, ComparisonOp::from_code(a)?, b),
            1 => Predicate::between(attr, a, b),
            _ => return None,
        };
        Some((p, 21))
    }
}

/// Appends one boundary's separator in the tagged wire form (tags 0–4;
/// shared by snapshots and the durability layer's op journal).
pub(crate) fn encode_separator_into<P: WireCodec>(s: Option<&Separator<P>>, out: &mut Vec<u8>) {
    match s {
        None => out.push(0),
        Some(Separator::Cmp { pred, left_label }) => {
            out.push(if *left_label { 2 } else { 1 });
            pred.encode_into(out);
        }
        Some(Separator::Between { pred, edge }) => {
            out.push(match edge {
                BetweenEdge::InteriorLeft => 3,
                BetweenEdge::InteriorRight => 4,
            });
            pred.encode_into(out);
        }
    }
}

/// Decodes one tagged separator starting at `bytes[*pos]`, advancing `pos`.
pub(crate) fn decode_separator<P: WireCodec>(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Option<Separator<P>>, SnapshotError> {
    let tag = *bytes
        .get(*pos)
        .ok_or(SnapshotError::Truncated("separator tag"))?;
    *pos += 1;
    if tag == 0 {
        return Ok(None);
    }
    let (pred, used) =
        P::decode(&bytes[*pos..]).ok_or(SnapshotError::Truncated("separator predicate"))?;
    *pos += used;
    let sep = match tag {
        1 => Separator::Cmp {
            pred,
            left_label: false,
        },
        2 => Separator::Cmp {
            pred,
            left_label: true,
        },
        3 => Separator::Between {
            pred,
            edge: BetweenEdge::InteriorLeft,
        },
        4 => Separator::Between {
            pred,
            edge: BetweenEdge::InteriorRight,
        },
        _ => return Err(SnapshotError::Inconsistent("unknown separator tag")),
    };
    Ok(Some(sep))
}

/// Serializes a knowledge base.
pub fn save<P: SpPredicate + WireCodec>(kb: &Knowledge<P>) -> Vec<u8> {
    let (pop, seps, overflow) = kb.parts();
    let ranks = pop.to_ranks();
    let mut out = Vec::with_capacity(16 + ranks.len() * 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(pop.k() as u64).to_le_bytes());
    out.extend_from_slice(&(ranks.len() as u64).to_le_bytes());
    for r in &ranks {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for s in seps {
        encode_separator_into(s.as_ref(), &mut out);
    }
    out.extend_from_slice(&(overflow.len() as u32).to_le_bytes());
    for e in overflow {
        out.extend_from_slice(&e.tuple.to_le_bytes());
        out.extend_from_slice(&(e.lo as u64).to_le_bytes());
        out.extend_from_slice(&(e.hi as u64).to_le_bytes());
    }
    out
}

/// Restores a knowledge base from a snapshot.
///
/// # Errors
/// Returns a [`SnapshotError`] on malformed input; the restored structure
/// is invariant-checked before being returned.
pub fn load<P: SpPredicate + WireCodec>(bytes: &[u8]) -> Result<Knowledge<P>, SnapshotError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize, what: &'static str| -> Result<&[u8], SnapshotError> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or(SnapshotError::Truncated(what))?;
        *pos += n;
        Ok(s)
    };

    if take(&mut pos, 4, "magic")? != MAGIC {
        return Err(SnapshotError::BadHeader);
    }
    let version = u16::from_le_bytes(take(&mut pos, 2, "version")?.try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(SnapshotError::BadHeader);
    }
    let k = u64::from_le_bytes(take(&mut pos, 8, "k")?.try_into().expect("8 bytes")) as usize;
    let n = u64::from_le_bytes(take(&mut pos, 8, "n_slots")?.try_into().expect("8 bytes")) as usize;
    // Bound both counts against the stream length BEFORE any allocation, so
    // a length-lying header cannot make `load` over-allocate: every slot
    // costs 4 rank bytes, and every partition must be non-empty (k ≤ n).
    if n > bytes.len() / 4 {
        return Err(SnapshotError::Truncated("ranks length"));
    }
    if k > n.max(1) {
        return Err(SnapshotError::Inconsistent("k exceeds slot count"));
    }

    let mut ranks = Vec::with_capacity(n);
    for _ in 0..n {
        ranks.push(u32::from_le_bytes(
            take(&mut pos, 4, "rank")?.try_into().expect("4 bytes"),
        ));
    }
    let pop = Pop::from_ranks(&ranks, k).map_err(SnapshotError::Inconsistent)?;

    let n_boundaries = k.saturating_sub(1);
    let mut seps: Vec<Option<Separator<P>>> = Vec::with_capacity(n_boundaries);
    for _ in 0..n_boundaries {
        seps.push(decode_separator(bytes, &mut pos)?);
    }

    let n_overflow = u32::from_le_bytes(
        take(&mut pos, 4, "overflow count")?
            .try_into()
            .expect("4 bytes"),
    ) as usize;
    // Each entry is 20 bytes on the wire; a count the remaining stream
    // cannot hold is a lie — reject it before allocating.
    if n_overflow > bytes.len().saturating_sub(pos) / 20 {
        return Err(SnapshotError::Truncated("overflow entries"));
    }
    let mut overflow = Vec::with_capacity(n_overflow);
    for _ in 0..n_overflow {
        let tuple = u32::from_le_bytes(
            take(&mut pos, 4, "overflow tuple")?
                .try_into()
                .expect("4 bytes"),
        );
        let lo = u64::from_le_bytes(
            take(&mut pos, 8, "overflow lo")?
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        let hi = u64::from_le_bytes(
            take(&mut pos, 8, "overflow hi")?
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        if lo > hi || (k > 0 && hi >= k) {
            return Err(SnapshotError::Inconsistent("overflow interval"));
        }
        overflow.push(OverflowEntry { tuple, lo, hi });
    }

    let kb = Knowledge::from_raw(pop, seps, overflow);
    // Final structural validation (catches e.g. parked-but-placed tuples).
    kb.validate().map_err(SnapshotError::Inconsistent)?;
    Ok(kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::insert_tuple;
    use crate::sd::process_comparison;
    use prkb_edbms::testing::PlainOracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn warmed(n: usize, cuts: usize, seed: u64) -> (Knowledge<Predicate>, PlainOracle) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..10_000u64)).collect();
        let oracle = PlainOracle::single_column(values);
        let mut kb: Knowledge<Predicate> = Knowledge::init(n);
        for _ in 0..cuts {
            let c = rng.gen_range(0..10_000u64);
            process_comparison(
                &mut kb,
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, c),
                &mut rng,
                true,
            );
        }
        (kb, oracle)
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let (kb, oracle) = warmed(2_000, 60, 1);
        let bytes = save(&kb);
        let restored: Knowledge<Predicate> = load(&bytes).expect("roundtrip");
        assert_eq!(restored.k(), kb.k());
        restored.check_invariants();

        // The restored index must answer queries identically.
        let mut rng = StdRng::seed_from_u64(2);
        let mut kb2 = restored;
        let mut kb1 = kb;
        for c in [100u64, 5_000, 9_999] {
            let p = Predicate::cmp(0, ComparisonOp::Lt, c);
            let a = process_comparison(&mut kb1, &oracle, &p, &mut rng, false);
            let b = process_comparison(&mut kb2, &oracle, &p, &mut rng, false);
            assert_eq!(a.sorted(), b.sorted());
        }
        // …and keep supporting inserts via the restored separators.
        let mut oracle = oracle;
        let t = oracle.insert(&[4242]);
        insert_tuple(&mut kb2, &oracle, t);
        kb2.check_invariants();
    }

    #[test]
    fn snapshot_size_matches_storage_accounting() {
        let (kb, _oracle) = warmed(5_000, 100, 3);
        let bytes = save(&kb);
        let accounted = kb.storage_bytes();
        // Canonical form plus the fixed header; the accounting's per-
        // separator estimate and the wire encoding may differ by a few
        // bytes per boundary (in-memory size vs. serialized size).
        let slack = 64 + 16 * kb.k();
        assert!(
            bytes.len() <= accounted + slack && accounted <= bytes.len() + slack,
            "snapshot {} vs accounted {}",
            bytes.len(),
            accounted
        );
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(
            load::<Predicate>(b"nope").unwrap_err(),
            SnapshotError::BadHeader
        );
        let (kb, _) = warmed(100, 10, 4);
        let good = save(&kb);
        for cut in [5usize, 14, 20, good.len() - 1] {
            assert!(load::<Predicate>(&good[..cut]).is_err(), "cut {cut}");
        }
        // Corrupt a rank so a partition empties.
        let mut bad = good.clone();
        // ranks start at offset 22; set every rank to 0 except none → rank 1+ empty.
        let k = kb.k();
        if k > 1 {
            for i in 0..100 {
                let off = 22 + i * 4;
                bad[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
            }
            assert!(matches!(
                load::<Predicate>(&bad),
                Err(SnapshotError::Inconsistent(_))
            ));
        }
    }

    #[test]
    fn length_lying_headers_rejected_without_allocation() {
        // Hand-built header claiming u64::MAX partitions/slots: `load` must
        // reject it from the stream length alone, before any allocation.
        let mut lying = Vec::new();
        lying.extend_from_slice(MAGIC);
        lying.extend_from_slice(&VERSION.to_le_bytes());
        lying.extend_from_slice(&u64::MAX.to_le_bytes()); // k
        lying.extend_from_slice(&u64::MAX.to_le_bytes()); // n_slots
        assert!(load::<Predicate>(&lying).is_err());

        // Plausible n, absurd k.
        let (kb, _) = warmed(50, 5, 7);
        let mut bad = save(&kb);
        bad[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load::<Predicate>(&bad),
            Err(SnapshotError::Inconsistent(_))
        ));

        // Valid stream up to an overflow count the tail cannot hold.
        let mut bad = save(&kb);
        let cnt_off = bad.len() - 4; // no overflow entries ⇒ count is last
        bad[cnt_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load::<Predicate>(&bad),
            Err(SnapshotError::Truncated(_))
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Hostile-input hardening: truncated, bit-flipped, and
        /// length-lying streams must always come back as a `SnapshotError`
        /// (or a still-valid knowledge base) — never a panic, never an
        /// allocation driven by an unchecked header field.
        fn hostile_streams_never_panic(
            seed in 0u64..8,
            cut in 0usize..4096,
            flips in proptest::collection::vec((0usize..4096, 0u32..8), 0..6),
        ) {
            let (kb, _) = warmed(120, 12, seed);
            let mut bytes = save(&kb);
            for &(pos, bit) in &flips {
                let len = bytes.len();
                bytes[pos % len] ^= 1 << bit;
            }
            bytes.truncate(cut % (bytes.len() + 1));
            if let Ok(restored) = load::<Predicate>(&bytes) {
                // Anything accepted must satisfy every structural invariant.
                restored.check_invariants();
            }
        }
    }

    #[test]
    fn empty_knowledge_roundtrip() {
        let kb: Knowledge<Predicate> = Knowledge::init(0);
        let restored: Knowledge<Predicate> = load(&save(&kb)).expect("roundtrip");
        assert_eq!(restored.k(), 0);
    }

    #[test]
    fn encrypted_predicate_snapshots_roundtrip() {
        // End-to-end with the real trapdoor type.
        use prkb_edbms::{DataOwner, PlainTable, SpOracle, TmConfig};
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (0..500).map(|_| rng.gen_range(0..1_000u64)).collect();
        let plain = PlainTable::single_column("t", "x", values);
        let owner = DataOwner::with_seed(6);
        let table = owner.encrypt_table(&plain, &mut rng);
        let tm = owner.trusted_machine(TmConfig::default());
        let oracle = SpOracle::new(&table, &tm);
        let mut kb: Knowledge<EncryptedPredicate> = Knowledge::init(500);
        for c in [100u64, 400, 700, 200, 900] {
            let p = owner
                .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Lt, c), &mut rng)
                .expect("valid");
            process_comparison(&mut kb, &oracle, &p, &mut rng, true);
        }
        let restored: Knowledge<EncryptedPredicate> = load(&save(&kb)).expect("roundtrip");
        assert_eq!(restored.k(), kb.k());
        restored.check_invariants();
        // Restored separators still route inserts through the TM.
        let mut table = table;
        let cells = owner.encrypt_row("t", &[555], &mut rng);
        let refs: Vec<&[u8]> = cells.iter().map(Vec::as_slice).collect();
        let t = table.push_encrypted_row(&refs).expect("arity");
        let oracle = SpOracle::new(&table, &tm);
        let mut restored = restored;
        insert_tuple(&mut restored, &oracle, t);
        restored.check_invariants();
    }
}
