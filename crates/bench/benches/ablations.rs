//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **QFilter binary search vs linear sampling** — Algorithm 1's O(lg k)
//!   probe vs testing one sample per partition (O(k));
//! * **QScan early stop vs scan-both** — Algorithm 2's inference vs
//!   scanning both NS partitions unconditionally;
//! * **MD update policies** — `PartialOnly` (free, sound) vs
//!   `CompleteSplits` (extra QPF) vs `Frozen`.
//!
//! All variants are measured in *QPF uses* (reported as custom output) and
//! wall time against the plaintext oracle so the algorithmic deltas are not
//! drowned by decryption noise.

use criterion::{criterion_group, criterion_main, Criterion};
use prkb_core::qfilter::qfilter;
use prkb_core::qscan::qscan;
use prkb_core::{EngineConfig, Knowledge, MdUpdatePolicy, PrkbEngine};
use prkb_edbms::testing::PlainOracle;
use prkb_edbms::{ComparisonOp, Predicate, SelectionOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const K: usize = 400;

fn warmed() -> (Knowledge<Predicate>, PlainOracle) {
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<u64> = (0..N).map(|_| rng.gen_range(0..30_000_000u64)).collect();
    let oracle = PlainOracle::single_column(values);
    let mut kb: Knowledge<Predicate> = Knowledge::init(N);
    while kb.k() < K {
        let c = rng.gen_range(0..30_000_000u64);
        prkb_core::sd::process_comparison(
            &mut kb,
            &oracle,
            &Predicate::cmp(0, ComparisonOp::Lt, c),
            &mut rng,
            true,
        );
    }
    oracle.reset_uses();
    (kb, oracle)
}

/// Linear-sampling alternative to QFilter: probe one sample per partition.
fn linear_filter(
    kb: &Knowledge<Predicate>,
    oracle: &PlainOracle,
    pred: &Predicate,
    rng: &mut StdRng,
) -> (usize, usize) {
    let pop = kb.pop();
    let mut prev = None;
    let mut ns = (0usize, pop.k() - 1);
    for r in 0..pop.k() {
        let label = oracle.eval(pred, pop.sample_at(r, rng));
        if let Some((pr, pl)) = prev {
            let _: usize = pr;
            if pl != label {
                ns = (r - 1, r);
                break;
            }
        }
        prev = Some((r, label));
    }
    ns
}

fn bench_qfilter_variants(c: &mut Criterion) {
    let (kb, oracle) = warmed();
    let mut g = c.benchmark_group("ablation_qfilter");
    g.bench_function("binary_search_qfilter", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let c = rng.gen_range(0..30_000_000u64);
            qfilter(
                kb.pop(),
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, c),
                &mut rng,
            )
        })
    });
    g.bench_function("linear_sampling_filter", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let c = rng.gen_range(0..30_000_000u64);
            linear_filter(
                &kb,
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, c),
                &mut rng,
            )
        })
    });
    g.finish();

    // Print the QPF accounting (the paper's metric).
    let mut rng = StdRng::seed_from_u64(3);
    oracle.reset_uses();
    for _ in 0..100 {
        let c = rng.gen_range(0..30_000_000u64);
        qfilter(
            kb.pop(),
            &oracle,
            &Predicate::cmp(0, ComparisonOp::Lt, c),
            &mut rng,
        );
    }
    let binary = oracle.qpf_uses() / 100;
    oracle.reset_uses();
    for _ in 0..100 {
        let c = rng.gen_range(0..30_000_000u64);
        linear_filter(
            &kb,
            &oracle,
            &Predicate::cmp(0, ComparisonOp::Lt, c),
            &mut rng,
        );
    }
    let linear = oracle.qpf_uses() / 100;
    eprintln!("[ablation] QFilter QPF/query: binary={binary} linear={linear} (k={K})");
}

fn bench_qscan_early_stop(c: &mut Criterion) {
    let (kb, oracle) = warmed();
    let mut g = c.benchmark_group("ablation_qscan");
    g.bench_function("early_stop_qscan", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let cut = rng.gen_range(0..30_000_000u64);
            let p = Predicate::cmp(0, ComparisonOp::Lt, cut);
            let f = qfilter(kb.pop(), &oracle, &p, &mut rng);
            qscan(kb.pop(), &oracle, &p, &f)
        })
    });
    g.bench_function("scan_both_partitions", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let cut = rng.gen_range(0..30_000_000u64);
            let p = Predicate::cmp(0, ComparisonOp::Lt, cut);
            let f = qfilter(kb.pop(), &oracle, &p, &mut rng);
            // Ablation: unconditionally evaluate every tuple in both NS
            // partitions (no early stop, no inference).
            let (a, b2) = f.ns.expect("non-empty POP");
            let mut hits = 0usize;
            for &r in &[a, b2] {
                for &t in kb.pop().members_at(r) {
                    if oracle.eval(&p, t) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_md_policies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 50_000usize;
    let cols: Vec<Vec<u64>> = (0..2)
        .map(|_| (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect())
        .collect();
    let oracle = PlainOracle::from_columns(cols);

    let mut g = c.benchmark_group("ablation_md_policy");
    g.sample_size(10);
    for policy in [
        MdUpdatePolicy::Frozen,
        MdUpdatePolicy::PartialOnly,
        MdUpdatePolicy::CompleteSplits,
    ] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || {
                    let mut engine: PrkbEngine<Predicate> = PrkbEngine::new(EngineConfig {
                        update: true,
                        md_policy: policy,
                        ..EngineConfig::default()
                    });
                    engine.init_attr(0, n);
                    engine.init_attr(1, n);
                    engine
                },
                |mut engine| {
                    let mut q_rng = StdRng::seed_from_u64(6);
                    for _ in 0..10 {
                        let lo0 = q_rng.gen_range(0..900_000u64);
                        let lo1 = q_rng.gen_range(0..900_000u64);
                        let dims = [
                            [
                                Predicate::cmp(0, ComparisonOp::Gt, lo0),
                                Predicate::cmp(0, ComparisonOp::Lt, lo0 + 50_000),
                            ],
                            [
                                Predicate::cmp(1, ComparisonOp::Gt, lo1),
                                Predicate::cmp(1, ComparisonOp::Lt, lo1 + 50_000),
                            ],
                        ];
                        engine.select_range_md(&oracle, &dims, &mut q_rng);
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Workload-locality ablation (beyond the paper). Measured outcome —
/// uniform warm-up beats hotspot-only warm-up even for hotspot queries:
/// concentrating every cut in the hotspot leaves the cold 90% of the domain
/// as one giant partition, and hotspot-edge queries occasionally pull it
/// into the NS-pair and pay a near-full scan. (See EXPERIMENTS.md; this is
/// why the paper's §8.2.6 owner bootstrap spreads cuts across the domain.)
fn bench_workload_locality(c: &mut Criterion) {
    let n = 200_000usize;
    let warm_queries = 60usize;
    let hotspot = 0..3_000_000u64; // 10% of the domain

    let build = |hot: bool| -> (Knowledge<Predicate>, PlainOracle) {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..30_000_000u64)).collect();
        let oracle = PlainOracle::single_column(values);
        let mut kb: Knowledge<Predicate> = Knowledge::init(n);
        for _ in 0..warm_queries {
            let cut = if hot {
                rng.gen_range(hotspot.clone())
            } else {
                rng.gen_range(0..30_000_000u64)
            };
            prkb_core::sd::process_comparison(
                &mut kb,
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, cut),
                &mut rng,
                true,
            );
        }
        oracle.reset_uses();
        (kb, oracle)
    };

    let mut g = c.benchmark_group("ablation_workload_locality");
    g.sample_size(10);
    for (name, hot) in [("uniform_warmup", false), ("hotspot_warmup", true)] {
        let (mut kb, oracle) = build(hot);
        g.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| {
                // Steady-state queries land in the hotspot.
                let cut = rng.gen_range(hotspot.clone());
                prkb_core::sd::process_comparison(
                    &mut kb,
                    &oracle,
                    &Predicate::cmp(0, ComparisonOp::Lt, cut),
                    &mut rng,
                    true,
                )
            })
        });
    }
    g.finish();

    // QPF accounting for the same comparison.
    for (name, hot) in [("uniform", false), ("hotspot", true)] {
        let (mut kb, oracle) = build(hot);
        let mut rng = StdRng::seed_from_u64(9);
        oracle.reset_uses();
        for _ in 0..50 {
            let cut = rng.gen_range(hotspot.clone());
            prkb_core::sd::process_comparison(
                &mut kb,
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, cut),
                &mut rng,
                true,
            );
        }
        eprintln!(
            "[ablation] locality: {name}-warmup → {} QPF / hotspot query (k={})",
            oracle.qpf_uses() / 50,
            kb.k()
        );
    }
}

criterion_group!(
    benches,
    bench_qfilter_variants,
    bench_qscan_early_stop,
    bench_md_policies,
    bench_workload_locality
);
criterion_main!(benches);
