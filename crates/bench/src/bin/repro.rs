//! `repro` — regenerates every table and figure of the PRKB paper.
//!
//! ```text
//! cargo run -p prkb-bench --bin repro --release -- all
//! cargo run -p prkb-bench --bin repro --release -- table2 fig8 fig13
//! PRKB_SCALE=paper cargo run -p prkb-bench --bin repro --release -- table3
//! ```

use prkb_bench::{
    exp_fig11_fig12, exp_fig13, exp_fig8, exp_fig9_fig10, exp_table2, exp_table3, exp_table4,
    Scale,
};

const ALL: [&str; 8] = [
    "table2", "fig8", "table3", "fig9", "fig10", "fig11", "fig12", "fig13",
];

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<&str> = args.iter().map(String::as_str).collect();
    if wanted.is_empty() || wanted == ["all"] {
        wanted = ALL.to_vec();
        wanted.push("table4");
    }

    eprintln!(
        "# PRKB paper reproduction — scale: {} (set PRKB_SCALE=ci|default|paper)",
        scale.tag()
    );
    for exp in wanted {
        let out = match exp {
            "table2" => exp_table2::run(scale),
            "fig8" => exp_fig8::run(scale),
            "table3" => exp_table3::run(scale),
            "fig9" => exp_fig9_fig10::run_fig9(scale),
            "fig10" => exp_fig9_fig10::run_fig10(scale),
            "fig11" => exp_fig11_fig12::run_fig11(scale),
            "fig12" => exp_fig11_fig12::run_fig12(scale),
            "fig13" => exp_fig13::run(scale),
            "table4" => exp_table4::run(scale),
            other => {
                eprintln!("unknown experiment {other:?}; known: {ALL:?} + table4 | all");
                std::process::exit(2);
            }
        };
        println!("{out}");
    }
}
