//! Storage-fault semantics and KB integrity scrubbing (DESIGN.md §15).
//!
//! Pinned guarantees:
//!
//! 1. **No lost durable ack** — for every seeded I/O fault (EIO / ENOSPC /
//!    short write on any storage operation), the durability layer yields
//!    either a clean error with the committed prefix recoverable, or a
//!    poisoned handle — never a wrong answer, a lost acknowledged record,
//!    or a panic.
//! 2. **fsync-failure poison** — a failed durability barrier permanently
//!    poisons the WAL/shard: no retry-and-assume-durable, every later
//!    commit attempt surfaces `SyncFailed`, and only a reopen resumes.
//! 3. **ENOSPC-safe rotation** — a full disk mid-checkpoint aborts the
//!    rotation with the previous checkpoint + WAL pair intact; reopen
//!    recovers the exact committed prefix and leaves no stray `*.tmp`.
//! 4. **Scrub verdicts** — the scrubber classifies deliberate rot
//!    (torn tail / mid-log / checkpoint rot / manifest mismatch) exactly,
//!    quarantines rather than deletes, and over every `CrashInjector`
//!    survivor state reports only crash residue, never corruption.
//! 5. **Blast radius** — a poisoned shard rejects new commits with
//!    `SyncFailed` while sibling shards keep serving and committing.

use prkb_core::durability::{encode_txn, DurableEngine, DurableError, TxnEntry};
use prkb_core::scrub::{scrub_engine_dir, scrub_pool_dir, ScrubDamage, QUARANTINE_DIR};
use prkb_core::snapshot::{self, WireCodec};
use prkb_core::storage::{real_fs, FaultFs, IoFaultKind, IoFaultRule, IoOp, StorageFs};
use prkb_core::{EngineConfig, PrkbEngine, ShardMap, ShardedDurablePool, SpPredicate};
use prkb_edbms::durability::{CrashInjector, CrashPoint, DurabilityError, WAL_HEADER_LEN};
use prkb_edbms::testing::PlainOracle;
use prkb_edbms::{ComparisonOp, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "prkb-storage-faults-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const ATTRS: u32 = 3;
const N: usize = 140;

fn oracle() -> PlainOracle {
    let mut rng = StdRng::seed_from_u64(0xFA_11);
    PlainOracle::from_columns(
        (0..ATTRS)
            .map(|_| (0..N).map(|_| rng.gen_range(0..1_000u64)).collect())
            .collect(),
    )
}

fn kb_bytes<P: SpPredicate + WireCodec>(engine: &PrkbEngine<P>) -> Vec<Vec<u8>> {
    let mut attrs: Vec<_> = engine.attrs().collect();
    attrs.sort_unstable();
    attrs
        .iter()
        .map(|&a| snapshot::save(engine.knowledge(a).expect("attr indexed")))
        .collect()
}

fn rotate_every(records: u64) -> EngineConfig {
    EngineConfig {
        checkpoint_wal_records: records,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    }
}

/// How many shards the sweeps use; CI fans `PRKB_SHARDS` over 1 and 8.
fn shards_from_env() -> usize {
    std::env::var("PRKB_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(2)
}

/// Outcome of a fault-armed engine run. `None` when the fault killed the
/// open itself (a clean error — nothing was acknowledged).
struct EngineRun {
    /// State at the last acknowledged (durable) commit.
    acked: Vec<Vec<u8>>,
    /// In-memory state when the run stopped (ahead of `acked` only when
    /// the fault hit after the in-memory commit).
    live: Vec<Vec<u8>>,
    /// Whether an operation failed (the run stopped early).
    failed: bool,
}

/// Drives a deterministic select/BETWEEN/delete workload against a durable
/// engine opened over `fs`, stopping cleanly at the first storage error.
fn drive_engine(dir: &Path, fs: Arc<dyn StorageFs>, config: EngineConfig) -> Option<EngineRun> {
    let oracle = oracle();
    let (mut durable, _) = match DurableEngine::<Predicate>::open_with_storage(
        dir,
        config,
        CrashInjector::disabled(),
        fs,
    ) {
        Ok(v) => v,
        Err(_) => return None,
    };
    let mut acked = kb_bytes(durable.engine());
    let run = |durable: &DurableEngine<Predicate>, acked: Vec<Vec<u8>>, failed| EngineRun {
        live: kb_bytes(durable.engine()),
        acked,
        failed,
    };
    for attr in 0..ATTRS {
        if durable.init_attr(attr, N).is_err() {
            return Some(run(&durable, acked, true));
        }
        acked = kb_bytes(durable.engine());
    }
    for round in 0..20u64 {
        let attr = (round % u64::from(ATTRS)) as u32;
        let mut rng = StdRng::seed_from_u64(round.wrapping_mul(0x9E37_79B9) + 7);
        let lo = (round * 41) % 700;
        let pred = if round % 3 == 0 {
            Predicate::between(attr, lo, lo + 150)
        } else {
            Predicate::cmp(attr, ComparisonOp::Lt, lo + 150)
        };
        let res = if round % 7 == 6 {
            durable.delete((round % 60) as u32).map(|_| ())
        } else {
            durable.try_select(&oracle, &pred, &mut rng).map(|_| ())
        };
        if res.is_err() {
            return Some(run(&durable, acked, true));
        }
        acked = kb_bytes(durable.engine());
    }
    Some(run(&durable, acked, false))
}

/// Reopens over the real filesystem; recovery must validate.
fn recover_engine(dir: &Path, config: EngineConfig) -> Vec<Vec<u8>> {
    let (engine, _) = DurableEngine::<Predicate>::open_with_storage(
        dir,
        config,
        CrashInjector::disabled(),
        real_fs(),
    )
    .expect("recovery over the real fs must open after an injected fault");
    for attr in engine.engine().attrs().collect::<Vec<_>>() {
        engine
            .engine()
            .knowledge(attr)
            .expect("attr indexed")
            .check_invariants();
    }
    kb_bytes(engine.engine())
}

fn no_stray_tmp(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("list dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "stray temp file {name} survived reopen"
        );
        if path.is_dir() && name != QUARANTINE_DIR {
            no_stray_tmp(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Seeded fault sweep: engine path
// ---------------------------------------------------------------------------

#[test]
fn seeded_fault_sweep_engine_never_loses_a_durable_ack() {
    for seed in 1..=16u64 {
        let dir = TmpDir::new("sweep-engine");
        let faults = FaultFs::seeded(real_fs(), seed);
        let config = rotate_every(4);
        let run = drive_engine(&dir.0, faults.handle(), config);
        let recovered = recover_engine(&dir.0, config);
        match run {
            None => {
                // The fault killed the open; nothing was ever acknowledged,
                // so an empty recovery is the only acceptable state.
                assert!(
                    faults.injected() >= 1,
                    "seed {seed}: open failed without an injected fault"
                );
            }
            Some(run) if run.failed => {
                assert!(
                    recovered == run.acked || recovered == run.live,
                    "seed {seed}: recovered state is neither the acknowledged \
                     prefix nor the in-flight state"
                );
            }
            Some(run) => {
                assert_eq!(
                    recovered, run.live,
                    "seed {seed}: clean run must recover its final state"
                );
            }
        }
        no_stray_tmp(&dir.0);
    }
}

// ---------------------------------------------------------------------------
// 2. Seeded fault sweep: sharded group-commit path
// ---------------------------------------------------------------------------

struct PoolRun {
    acked: Vec<Vec<Vec<u8>>>,
    live: Vec<Vec<Vec<u8>>>,
    failed: bool,
}

fn commit_shard(
    committer: &prkb_core::ShardCommitter<Predicate>,
    engine: &mut PrkbEngine<Predicate>,
) -> Result<(), DurableError> {
    let entries: Vec<TxnEntry<Predicate>> = engine
        .take_ops()
        .into_iter()
        .map(|(attr, op)| TxnEntry::Op { attr, op })
        .collect();
    let ticket = committer.enqueue(encode_txn(&entries));
    committer.wait_durable(ticket).map(|_| ())
}

fn drive_pool(dir: &Path, fs: Arc<dyn StorageFs>, shards: usize) -> Option<PoolRun> {
    let oracle = oracle();
    let config = rotate_every(4);
    let mut pool = match ShardedDurablePool::<Predicate>::open_with_storage(
        dir,
        config,
        ShardMap::new(shards),
        CrashInjector::disabled(),
        fs,
    ) {
        Ok(p) => p,
        Err(_) => return None,
    };
    let map = pool.map();
    let mut acked: Vec<Vec<Vec<u8>>> = (0..map.shards())
        .map(|s| kb_bytes(pool.shard_engine(s)))
        .collect();
    for a in 0..ATTRS {
        let sid = map.shard_of(a);
        if pool.init_attr(a, N).is_err() {
            let (_, parts) = pool.into_parts();
            return Some(PoolRun {
                live: parts.iter().map(|(e, _)| kb_bytes(e)).collect(),
                acked,
                failed: true,
            });
        }
        acked[sid] = kb_bytes(pool.shard_engine(sid));
    }
    let (_, mut parts) = pool.into_parts();
    let finish = |parts: &[(PrkbEngine<Predicate>, prkb_core::ShardCommitter<Predicate>)],
                  acked: Vec<Vec<Vec<u8>>>,
                  failed: bool| PoolRun {
        live: parts.iter().map(|(e, _)| kb_bytes(e)).collect(),
        acked,
        failed,
    };
    for round in 0..16u64 {
        let attr = (round % u64::from(ATTRS)) as u32;
        let sid = map.shard_of(attr);
        let mut rng = StdRng::seed_from_u64(round.wrapping_mul(0xA5A5) + 3);
        let lo = (round * 53) % 650;
        let (engine, committer) = &mut parts[sid];
        engine
            .try_select(
                &oracle,
                &Predicate::cmp(attr, ComparisonOp::Lt, lo + 120),
                &mut rng,
            )
            .expect("plain selects cannot hit storage");
        if commit_shard(committer, engine).is_err() {
            return Some(finish(&parts, acked, true));
        }
        acked[sid] = kb_bytes(engine);
        if committer.wants_checkpoint(&config) && committer.checkpoint(engine).is_err() {
            return Some(finish(&parts, acked, true));
        }
    }
    Some(finish(&parts, acked, false))
}

fn recover_pool(dir: &Path, shards: usize) -> Vec<Vec<Vec<u8>>> {
    let pool = ShardedDurablePool::<Predicate>::open_with_storage(
        dir,
        rotate_every(4),
        ShardMap::new(shards),
        CrashInjector::disabled(),
        real_fs(),
    )
    .expect("recovery over the real fs must open");
    (0..pool.map().shards())
        .map(|s| {
            let engine = pool.shard_engine(s);
            for attr in engine.attrs().collect::<Vec<_>>() {
                engine
                    .knowledge(attr)
                    .expect("attr indexed")
                    .check_invariants();
            }
            kb_bytes(engine)
        })
        .collect()
}

fn assert_pool_run(run: Option<PoolRun>, recovered: &[Vec<Vec<u8>>], tag: &str) {
    let Some(run) = run else {
        // Fault at pool creation: clean error, nothing acknowledged.
        return;
    };
    assert_eq!(recovered.len(), run.live.len(), "{tag}: shard count");
    for (sid, rec) in recovered.iter().enumerate() {
        if run.failed {
            assert!(
                *rec == run.acked[sid] || *rec == run.live[sid],
                "{tag} shard {sid}: recovered state is neither the acknowledged \
                 prefix nor the in-flight state"
            );
        } else {
            assert_eq!(
                *rec, run.live[sid],
                "{tag} shard {sid}: clean run must recover final state"
            );
        }
    }
}

#[test]
fn seeded_fault_sweep_pool_never_loses_a_durable_ack() {
    let shards = shards_from_env();
    for seed in 1..=10u64 {
        let dir = TmpDir::new("sweep-pool");
        let faults = FaultFs::seeded(real_fs(), seed);
        let run = drive_pool(&dir.0, faults.handle(), shards);
        let recovered = recover_pool(&dir.0, shards);
        assert_pool_run(run, &recovered, &format!("seed {seed}"));
        no_stray_tmp(&dir.0);
    }
}

/// CI hook: `PRKB_IO_FAULT_SEED=<n>` arms the injector exactly like the
/// seeded sweep; unset, the run is clean and the recovery assertion still
/// pins replay equivalence.
#[test]
fn env_driven_storage_fault_recovers() {
    let shards = shards_from_env();
    let dir = TmpDir::new("env");
    let fs: Arc<dyn StorageFs> = match FaultFs::from_env(real_fs()) {
        Some(faults) => faults.handle(),
        None => real_fs(),
    };
    let run = drive_pool(&dir.0, fs, shards);
    let recovered = recover_pool(&dir.0, shards);
    assert_pool_run(run, &recovered, "env");
    no_stray_tmp(&dir.0);
}

// ---------------------------------------------------------------------------
// 3. fsync-failure semantics: poison, no durable ack, SyncFailed class
// ---------------------------------------------------------------------------

#[test]
fn failed_wal_sync_poisons_engine_and_every_later_commit_says_sync_failed() {
    let dir = TmpDir::new("sync-poison");
    let oracle = oracle();
    // Let engine creation and init through, then fail the WAL's data sync.
    let faults = FaultFs::scripted(
        real_fs(),
        vec![IoFaultRule {
            op: Some(IoOp::SyncData),
            path_contains: None,
            nth: u64::from(ATTRS) + 1,
            kind: IoFaultKind::Eio,
            sticky: false,
        }],
    );
    let (mut durable, _) = DurableEngine::<Predicate>::open_with_storage(
        &dir.0,
        EngineConfig::default(),
        CrashInjector::disabled(),
        faults.handle(),
    )
    .expect("open");
    for a in 0..ATTRS {
        durable
            .init_attr(a, N)
            .expect("inits precede the armed sync");
    }
    let acked = kb_bytes(durable.engine());
    let mut rng = StdRng::seed_from_u64(1);
    let err = durable
        .try_select(&oracle, &Predicate::cmp(0, ComparisonOp::Lt, 500), &mut rng)
        .expect_err("the armed sync must fail the commit");
    assert!(
        matches!(err, DurableError::Storage(DurabilityError::SyncFailed(_))),
        "failed fsync must surface as SyncFailed, got {err:?}"
    );
    assert!(durable.is_poisoned(), "failed fsync must poison the handle");
    // The non-sticky rule is spent: the disk "works" again. A poisoned
    // handle must still refuse — no retry-and-assume-durable, ever.
    let err = durable
        .try_select(&oracle, &Predicate::cmp(1, ComparisonOp::Lt, 400), &mut rng)
        .expect_err("poisoned handle must refuse new work");
    assert!(
        format!("{err}").contains("no durable ack"),
        "poison error must carry the sync-failure reason, got: {err}"
    );
    // A failed fsync means durability is *unknown*: the record was written
    // but never acknowledged, so recovery may land on either side of it —
    // just never lose the acked prefix or invent a third state.
    let live = kb_bytes(durable.engine());
    drop(durable);
    let recovered = recover_engine(&dir.0, EngineConfig::default());
    assert!(
        recovered == acked || recovered == live,
        "recovery must be the acked prefix or the unacknowledged in-flight state"
    );
    assert!(faults.injected() >= 1);
}

// ---------------------------------------------------------------------------
// 4. ENOSPC-safe checkpoint rotation (fill-quota schedule)
// ---------------------------------------------------------------------------

#[test]
fn enospc_mid_rotation_keeps_old_checkpoint_and_recovers_committed_prefix() {
    let dir = TmpDir::new("enospc");
    let oracle = oracle();
    let config = EngineConfig {
        checkpoint_wal_records: 0,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    };
    // Phase 1: a clean first checkpoint over the real fs.
    {
        let (mut durable, _) = DurableEngine::<Predicate>::open_with_storage(
            &dir.0,
            config,
            CrashInjector::disabled(),
            real_fs(),
        )
        .expect("open");
        for a in 0..ATTRS {
            durable.init_attr(a, N).expect("init");
        }
        let mut rng = StdRng::seed_from_u64(2);
        durable
            .try_select(&oracle, &Predicate::cmp(0, ComparisonOp::Lt, 300), &mut rng)
            .expect("select");
        durable.checkpoint().expect("clean rotation");
    }
    let old_checkpoint = std::fs::read(dir.0.join("checkpoint.bin")).expect("checkpoint exists");

    // Phase 2: reopen over a disk that fills up exactly when the *next*
    // rotation tries to sync its temp file — sticky, like real ENOSPC.
    let faults = FaultFs::scripted(
        real_fs(),
        vec![IoFaultRule {
            op: Some(IoOp::SyncAll),
            path_contains: Some("checkpoint.bin.tmp".into()),
            nth: 1,
            kind: IoFaultKind::Enospc,
            sticky: true,
        }],
    );
    let (mut durable, _) = DurableEngine::<Predicate>::open_with_storage(
        &dir.0,
        config,
        CrashInjector::disabled(),
        faults.handle(),
    )
    .expect("reopen");
    let mut rng = StdRng::seed_from_u64(3);
    durable
        .try_select(&oracle, &Predicate::cmp(1, ComparisonOp::Lt, 600), &mut rng)
        .expect("commit before the armed rotation");
    let acked = kb_bytes(durable.engine());
    let err = durable.checkpoint().expect_err("rotation must abort");
    assert!(
        matches!(err, DurableError::Storage(DurabilityError::SyncFailed(_))),
        "ENOSPC at the checkpoint barrier is a sync failure, got {err:?}"
    );
    assert!(durable.is_poisoned());
    drop(durable);

    // The previous checkpoint + WAL pair must be byte-identical…
    assert_eq!(
        std::fs::read(dir.0.join("checkpoint.bin")).expect("still there"),
        old_checkpoint,
        "aborted rotation must leave the old checkpoint untouched"
    );
    // …recovery must be exactly the committed prefix…
    let recovered = recover_engine(&dir.0, config);
    assert_eq!(recovered, acked, "committed prefix lost to ENOSPC");
    // …and the reopen must have cleaned the stray temp file.
    no_stray_tmp(&dir.0);
}

// ---------------------------------------------------------------------------
// 5. Scrub verdicts over deliberately rotted artifacts
// ---------------------------------------------------------------------------

/// Builds a real engine directory with a non-trivial checkpoint and a WAL
/// holding several frames, returning its committed byte state.
fn build_engine_dir(dir: &Path) -> Vec<Vec<u8>> {
    let oracle = oracle();
    let config = EngineConfig {
        checkpoint_wal_records: 0,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    };
    let (mut durable, _) = DurableEngine::<Predicate>::open(dir, config).expect("open");
    for a in 0..ATTRS {
        durable.init_attr(a, N).expect("init");
    }
    let mut rng = StdRng::seed_from_u64(5);
    durable
        .try_select(&oracle, &Predicate::cmp(0, ComparisonOp::Lt, 400), &mut rng)
        .expect("select");
    durable.checkpoint().expect("rotate");
    for bound in [200u64, 500, 800] {
        durable
            .try_select(
                &oracle,
                &Predicate::cmp(1, ComparisonOp::Lt, bound),
                &mut rng,
            )
            .expect("select");
    }
    kb_bytes(durable.engine())
}

fn wal_path(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("list")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            let n = p.file_name().unwrap().to_string_lossy().into_owned();
            n.starts_with("wal.") && n.ends_with(".log")
        })
        .collect();
    assert_eq!(wals.len(), 1, "exactly one live WAL");
    wals.pop().unwrap()
}

#[test]
fn scrub_reports_clean_on_an_intact_directory() {
    let dir = TmpDir::new("scrub-clean");
    build_engine_dir(&dir.0);
    let report = scrub_engine_dir::<Predicate>(real_fs().as_ref(), &dir.0, false);
    assert!(report.is_clean(), "{}", report.to_json());
    assert!(report.files_scanned >= 2, "checkpoint + WAL scanned");
    assert_eq!(report.quarantined, 0);
}

#[test]
fn scrub_classifies_torn_tail_and_leaves_it_alone() {
    let dir = TmpDir::new("scrub-torn");
    let committed = build_engine_dir(&dir.0);
    let wal = wal_path(&dir.0);
    // Append a partial frame: the torn-write shape a crash leaves behind.
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes.extend_from_slice(&[0xAB; 7]);
    std::fs::write(&wal, &bytes).expect("tear");

    let report = scrub_engine_dir::<Predicate>(real_fs().as_ref(), &dir.0, true);
    let f = report
        .findings
        .iter()
        .find(|f| f.path == wal)
        .expect("wal finding");
    assert_eq!(f.damage, ScrubDamage::TornTail);
    assert_eq!(f.frames_valid, Some(3), "three committed frames intact");
    assert!(f.quarantined_to.is_none(), "torn tails are recovery's job");
    assert!(!report.has_corruption());
    assert!(!report.is_clean());

    // Recovery truncates the tear: nothing committed is lost.
    let recovered = recover_engine(&dir.0, EngineConfig::default());
    assert_eq!(recovered, committed);
}

#[test]
fn scrub_classifies_mid_log_corruption_and_quarantine_unblocks_reopen() {
    let dir = TmpDir::new("scrub-midlog");
    build_engine_dir(&dir.0);
    let wal = wal_path(&dir.0);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    // Flip one payload byte inside the *first* frame: valid frames follow,
    // so this is damage inside the committed prefix.
    let idx = WAL_HEADER_LEN as usize + 8 + 2;
    bytes[idx] ^= 0x01;
    std::fs::write(&wal, &bytes).expect("rot");

    // Recovery must refuse the damaged log outright.
    DurableEngine::<Predicate>::open(&dir.0, EngineConfig::default())
        .expect_err("mid-log corruption must refuse to open");

    let report = scrub_engine_dir::<Predicate>(real_fs().as_ref(), &dir.0, true);
    let f = report
        .findings
        .iter()
        .find(|f| f.damage == ScrubDamage::MidLogCorruption)
        .expect("mid-log finding");
    assert!(report.has_corruption());
    let moved = f.quarantined_to.as_ref().expect("quarantined");
    assert!(moved.starts_with(dir.0.join(QUARANTINE_DIR)));
    assert_eq!(
        std::fs::read(moved).expect("evidence preserved"),
        bytes,
        "quarantine must move, never truncate or delete"
    );
    assert!(!wal.exists());

    // With the rotted WAL out of the way the checkpoint still opens.
    DurableEngine::<Predicate>::open(&dir.0, EngineConfig::default())
        .expect("quarantine unblocks reopen");
}

#[test]
fn scrub_classifies_checkpoint_rot() {
    let dir = TmpDir::new("scrub-ckpt");
    build_engine_dir(&dir.0);
    let ckpt = dir.0.join("checkpoint.bin");
    let mut bytes = std::fs::read(&ckpt).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt, &bytes).expect("rot");

    DurableEngine::<Predicate>::open(&dir.0, EngineConfig::default())
        .expect_err("rotted checkpoint must refuse to open");

    let report = scrub_engine_dir::<Predicate>(real_fs().as_ref(), &dir.0, true);
    let f = report
        .findings
        .iter()
        .find(|f| f.path == ckpt)
        .expect("checkpoint finding");
    assert_eq!(f.damage, ScrubDamage::CheckpointRot);
    assert!(f.quarantined_to.is_some());
    assert!(report.has_corruption());

    DurableEngine::<Predicate>::open(&dir.0, EngineConfig::default())
        .expect("quarantine unblocks reopen");
}

#[test]
fn scrub_classifies_manifest_rot_on_pools() {
    let dir = TmpDir::new("scrub-manifest");
    {
        let mut pool = ShardedDurablePool::<Predicate>::open(
            &dir.0,
            EngineConfig::default(),
            ShardMap::new(2),
        )
        .expect("create");
        for a in 0..ATTRS {
            pool.init_attr(a, N).expect("init");
        }
    }
    let clean = scrub_pool_dir::<Predicate>(real_fs().as_ref(), &dir.0, false);
    assert!(clean.is_clean(), "{}", clean.to_json());

    let manifest = dir.0.join("manifest.bin");
    let mut bytes = std::fs::read(&manifest).expect("read");
    bytes[6] ^= 0xFF;
    std::fs::write(&manifest, &bytes).expect("rot");

    let report = scrub_pool_dir::<Predicate>(real_fs().as_ref(), &dir.0, true);
    let f = report
        .findings
        .iter()
        .find(|f| f.path == manifest)
        .expect("manifest finding");
    assert_eq!(f.damage, ScrubDamage::ManifestMismatch);
    assert!(f.quarantined_to.is_some());

    // With the rotted manifest quarantined the pool re-creates one; the
    // shard count is the caller's requested count again.
    let pool =
        ShardedDurablePool::<Predicate>::open(&dir.0, EngineConfig::default(), ShardMap::new(2))
            .expect("reopen after quarantine");
    assert_eq!(pool.map().shards(), 2);
}

#[test]
fn pool_scrub_via_handle_walks_every_shard() {
    let dir = TmpDir::new("scrub-pool-handle");
    let mut pool =
        ShardedDurablePool::<Predicate>::open(&dir.0, EngineConfig::default(), ShardMap::new(4))
            .expect("create");
    for a in 0..ATTRS {
        pool.init_attr(a, N).expect("init");
    }
    let report = pool.scrub(false);
    assert!(report.is_clean(), "{}", report.to_json());
    // Manifest + one WAL per shard that owns at least one attribute... at
    // minimum every shard directory contributes its WAL.
    assert!(
        report.files_scanned >= 5,
        "manifest + 4 shard WALs, got {}",
        report.files_scanned
    );
}

// ---------------------------------------------------------------------------
// 6. Scrub over every CrashInjector survivor state
// ---------------------------------------------------------------------------

/// Whatever state a crash leaves behind is, by the §10 recovery contract,
/// openable — so the scrubber must classify it as crash residue (clean,
/// torn tail, or a stray temp), never as corruption.
#[test]
fn scrub_classifies_every_crash_survivor_as_residue_not_corruption() {
    let oracle = oracle();
    for point in CrashPoint::ALL {
        for nth in [1u64, 3] {
            let dir = TmpDir::new("crash-survivor");
            let config = rotate_every(3);
            let (mut durable, _) = DurableEngine::<Predicate>::open_with_crash(
                &dir.0,
                config,
                CrashInjector::at_nth(point, nth),
            )
            .expect("fresh dir opens");
            let mut rng = StdRng::seed_from_u64(11);
            'run: {
                for a in 0..ATTRS {
                    if durable.init_attr(a, N).is_err() {
                        break 'run;
                    }
                }
                for round in 0..14u64 {
                    let attr = (round % u64::from(ATTRS)) as u32;
                    let bound = (round * 67) % 900;
                    if durable
                        .try_select(
                            &oracle,
                            &Predicate::cmp(attr, ComparisonOp::Lt, bound),
                            &mut rng,
                        )
                        .is_err()
                    {
                        break 'run;
                    }
                }
            }
            drop(durable);
            let report = scrub_engine_dir::<Predicate>(real_fs().as_ref(), &dir.0, false);
            for f in &report.findings {
                assert!(
                    matches!(
                        f.damage,
                        ScrubDamage::Clean | ScrubDamage::TornTail | ScrubDamage::StrayTemp
                    ),
                    "{point}:{nth}: crash residue misclassified as {} at {} ({})",
                    f.damage.name(),
                    f.path.display(),
                    f.detail
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 7. Poisoned shard isolation
// ---------------------------------------------------------------------------

#[test]
fn poisoned_shard_rejects_with_sync_failed_while_siblings_serve() {
    let dir = TmpDir::new("shard-isolation");
    let oracle = oracle();
    let shards = 4usize;
    let map = ShardMap::new(shards);
    // The shard map is a pure function, so the init flush count per shard
    // is known before the pool exists: one awaited flush per owned attr.
    let poisoned_sid = map.shard_of(0);
    let inits_on_poisoned = (0..ATTRS)
        .filter(|&a| map.shard_of(a) == poisoned_sid)
        .count() as u64;
    let faults = FaultFs::scripted(
        real_fs(),
        vec![IoFaultRule {
            op: Some(IoOp::SyncData),
            path_contains: Some(format!("shard.{poisoned_sid}/")),
            nth: inits_on_poisoned + 1,
            kind: IoFaultKind::Eio,
            sticky: false,
        }],
    );
    let mut pool = ShardedDurablePool::<Predicate>::open_with_storage(
        &dir.0,
        EngineConfig::default(),
        map,
        CrashInjector::disabled(),
        faults.handle(),
    )
    .expect("open");
    for a in 0..ATTRS {
        pool.init_attr(a, N).expect("inits precede the armed sync");
    }
    let (map, mut parts) = pool.into_parts();
    let mut rng = StdRng::seed_from_u64(21);

    // First commit on the doomed shard trips the armed fsync.
    let (engine, committer) = &mut parts[poisoned_sid];
    engine
        .try_select(&oracle, &Predicate::cmp(0, ComparisonOp::Lt, 500), &mut rng)
        .expect("select");
    let err = commit_shard(committer, engine).expect_err("armed fsync fails the commit");
    assert!(
        matches!(err, DurableError::Storage(DurabilityError::SyncFailed(_))),
        "got {err:?}"
    );
    assert!(committer.is_poisoned());
    assert!(
        matches!(
            committer.poison_error(),
            Some(DurableError::Storage(DurabilityError::SyncFailed(_)))
        ),
        "poison class must be remembered as SyncFailed"
    );
    // Retry on the poisoned shard: still SyncFailed, never a durable ack.
    engine
        .try_select(&oracle, &Predicate::cmp(0, ComparisonOp::Gt, 100), &mut rng)
        .expect("in-memory select still works");
    let err = commit_shard(committer, engine).expect_err("poisoned shard refuses");
    assert!(
        matches!(err, DurableError::Storage(DurabilityError::SyncFailed(_))),
        "got {err:?}"
    );

    // Every *other* shard keeps committing durably.
    for a in 1..ATTRS {
        let sid = map.shard_of(a);
        if sid == poisoned_sid {
            continue;
        }
        let (engine, committer) = &mut parts[sid];
        engine
            .try_select(&oracle, &Predicate::cmp(a, ComparisonOp::Lt, 700), &mut rng)
            .expect("select");
        commit_shard(committer, engine).expect("healthy shards keep serving");
        assert!(!committer.is_poisoned());
    }

    // Reopen over the real fs: the poisoned shard recovers its committed
    // prefix; healthy shards recover everything they acknowledged.
    drop(parts);
    let pool = ShardedDurablePool::<Predicate>::open_with_storage(
        &dir.0,
        EngineConfig::default(),
        ShardMap::new(shards),
        CrashInjector::disabled(),
        real_fs(),
    )
    .expect("reopen");
    for sid in 0..shards {
        for attr in pool.shard_engine(sid).attrs().collect::<Vec<_>>() {
            pool.shard_engine(sid)
                .knowledge(attr)
                .expect("attr indexed")
                .check_invariants();
        }
    }
}
