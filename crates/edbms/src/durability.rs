//! Durable-storage primitives: write-ahead log, atomic checkpoints, and
//! crash-point injection.
//!
//! The PRKB's whole value is *accumulated* state — every answered query
//! refines the index (paper §5.3) — so losing it on a crash silently resets
//! the system to worst-case QPF cost. This module provides the
//! payload-agnostic machinery a durable index needs (the PRKB-specific
//! encoding lives in `prkb-core::durability`):
//!
//! * [`Wal`] — an append-only, CRC32-framed, length-prefixed log. Each
//!   record is fsync'd before the caller releases the result it covers, so
//!   an acknowledged refinement is never lost. Recovery replays the longest
//!   valid prefix, distinguishing a **torn tail** (partial final record —
//!   the expected shape of a crash mid-append; silently truncated) from
//!   **mid-log corruption** (a bad record *followed by* valid ones — bitrot
//!   or tampering; a hard error, the log refuses to open).
//! * [`write_checkpoint`] — full-snapshot rotation: write to a temp file,
//!   fsync, atomically rename over the previous checkpoint, fsync the
//!   directory. A crash at any boundary leaves either the old or the new
//!   checkpoint fully intact, never a mix.
//! * [`CrashInjector`] — simulated process death at every write / fsync /
//!   rename boundary ([`CrashPoint`]), including torn writes (a partial
//!   record reaches the disk before the "crash"). Deterministic and
//!   env-drivable via `PRKB_CRASH_POINT` (mirroring `PRKB_FAULT_SEED` from
//!   the resilience layer), which is what the CI crash-sweep job uses.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::storage::{RealFs, StorageFile, StorageFs};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"PWAL";
/// WAL format version.
pub const WAL_VERSION: u16 = 1;
/// WAL header length: magic, version, two reserved bytes.
pub const WAL_HEADER_LEN: u64 = 8;
/// Upper bound on a single record's payload; a length field above this is
/// treated as damage, not as a 4 GiB allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// The 8-byte WAL file header: `"PWAL" | version u16 | reserved u16`.
fn wal_header() -> [u8; WAL_HEADER_LEN as usize] {
    let mut header = [0u8; WAL_HEADER_LEN as usize];
    header[..4].copy_from_slice(WAL_MAGIC);
    header[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header
}

/// CRC32 (IEEE 802.3, reflected) over `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table built on demand; durability paths are I/O-bound so the
    // 256-entry rebuild per call is irrelevant next to the fsync.
    let mut table = [0u32; 256];
    for (i, e) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *e = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A write / fsync / rename boundary at which an injected crash can occur.
///
/// Every durable transition the WAL and checkpoint paths make has a hook
/// immediately **after** it (and one before the first byte), so a sweep over
/// all variants exercises every partially-persisted state a real `kill -9`
/// could leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before any byte of the record reaches the WAL file.
    BeforeWalAppend,
    /// Mid-record: a *prefix* of the frame reaches the file (torn write).
    MidWalAppend,
    /// The full frame is written but not yet fsync'd.
    AfterWalAppend,
    /// The frame is written and fsync'd (the commit point).
    AfterWalSync,
    /// Before any byte of the checkpoint temp file is written.
    BeforeCheckpointWrite,
    /// Mid-checkpoint: a prefix of the snapshot reaches the temp file.
    MidCheckpointWrite,
    /// The temp file is fully written but not yet fsync'd.
    AfterCheckpointWrite,
    /// The temp file is fsync'd but not yet renamed into place.
    AfterCheckpointSync,
    /// The rename happened; the old WAL has not been retired yet.
    AfterCheckpointRename,
    /// The fresh epoch's WAL exists; the stale one has not been removed.
    BeforeWalRetire,
    /// Checkpoint rotation fully complete.
    AfterWalRetire,
    /// A group-commit batch is about to be flushed: records are enqueued in
    /// memory, none of the batch has reached the WAL file yet. Fired by
    /// group-commit committers at the start of every batch flush — the
    /// shutdown drain included — so a sweep proves that losing a whole
    /// *unacknowledged* batch still recovers a committed prefix.
    BeforeGroupFlush,
}

impl CrashPoint {
    /// Every hook point, in pipeline order — the sweep the CI job and the
    /// replay-equivalence proptest iterate over.
    pub const ALL: [CrashPoint; 12] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::MidWalAppend,
        CrashPoint::AfterWalAppend,
        CrashPoint::AfterWalSync,
        CrashPoint::BeforeCheckpointWrite,
        CrashPoint::MidCheckpointWrite,
        CrashPoint::AfterCheckpointWrite,
        CrashPoint::AfterCheckpointSync,
        CrashPoint::AfterCheckpointRename,
        CrashPoint::BeforeWalRetire,
        CrashPoint::AfterWalRetire,
        CrashPoint::BeforeGroupFlush,
    ];

    /// Stable lowercase name, as accepted by `PRKB_CRASH_POINT`.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeWalAppend => "before_wal_append",
            CrashPoint::MidWalAppend => "mid_wal_append",
            CrashPoint::AfterWalAppend => "after_wal_append",
            CrashPoint::AfterWalSync => "after_wal_sync",
            CrashPoint::BeforeCheckpointWrite => "before_checkpoint_write",
            CrashPoint::MidCheckpointWrite => "mid_checkpoint_write",
            CrashPoint::AfterCheckpointWrite => "after_checkpoint_write",
            CrashPoint::AfterCheckpointSync => "after_checkpoint_sync",
            CrashPoint::AfterCheckpointRename => "after_checkpoint_rename",
            CrashPoint::BeforeWalRetire => "before_wal_retire",
            CrashPoint::AfterWalRetire => "after_wal_retire",
            CrashPoint::BeforeGroupFlush => "before_group_flush",
        }
    }

    /// Parses a point name (as produced by [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == s.trim())
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum DurabilityError {
    /// A real I/O failure (disk full, permission, …).
    Io(std::io::Error),
    /// An injected crash fired: the process is considered dead at this
    /// boundary. Whatever reached the disk before the hook stays there.
    Crash(CrashPoint),
    /// The WAL header is missing or from an unknown version.
    BadWalHeader,
    /// A CRC-failing or misframed record **followed by valid data** — not a
    /// torn tail but damage inside the committed prefix. The log refuses to
    /// open rather than silently drop acknowledged refinements.
    CorruptRecord {
        /// Zero-based index of the bad record.
        record: u64,
        /// Byte offset of its frame.
        offset: u64,
        /// What failed.
        reason: &'static str,
    },
    /// A checkpoint file failed its integrity or structural checks.
    CorruptCheckpoint(String),
    /// A durability barrier (`sync_data`/`sync_all`) failed, or the handle
    /// was already poisoned by an earlier write/sync failure. After a failed
    /// fsync the kernel may have *dropped* the dirty pages (the fsyncgate
    /// lesson), so retry-and-assume-durable is a lie: the affected WAL/shard
    /// is permanently poisoned and never issues a durable ack again until
    /// the process reopens and re-reads what actually persisted.
    SyncFailed(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O failure: {e}"),
            DurabilityError::Crash(p) => write!(f, "injected crash at {p}"),
            DurabilityError::BadWalHeader => write!(f, "not a PRKB WAL (bad magic/version)"),
            DurabilityError::CorruptRecord {
                record,
                offset,
                reason,
            } => write!(
                f,
                "WAL corrupt at record {record} (offset {offset}): {reason}; \
                 valid records follow, refusing to discard committed state"
            ),
            DurabilityError::CorruptCheckpoint(what) => write!(f, "corrupt checkpoint: {what}"),
            DurabilityError::SyncFailed(why) => write!(
                f,
                "durability barrier failed ({why}); no durable ack — \
                 handle poisoned until reopen"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Deterministic crash injection: fires [`DurabilityError::Crash`] at the
/// `nth` occurrence of one chosen [`CrashPoint`].
///
/// Cloning shares the hit counter, so a [`Wal`] and the checkpoint path can
/// count occurrences against one schedule — exactly like a single process
/// dying once.
#[derive(Debug, Clone, Default)]
pub struct CrashInjector {
    target: Option<(CrashPoint, u64)>,
    hits: Arc<AtomicU64>,
}

impl CrashInjector {
    /// Never fires.
    pub fn disabled() -> Self {
        CrashInjector::default()
    }

    /// Fires at the first occurrence of `point`.
    pub fn at(point: CrashPoint) -> Self {
        Self::at_nth(point, 1)
    }

    /// Fires at the `nth` (1-based) occurrence of `point`.
    pub fn at_nth(point: CrashPoint, nth: u64) -> Self {
        CrashInjector {
            target: Some((point, nth.max(1))),
            hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Reads `PRKB_CRASH_POINT` (`<name>` or `<name>:<nth>`), the hook the
    /// CI crash-sweep job sets. Unset or unparsable ⇒ disabled.
    pub fn from_env() -> Self {
        let Ok(spec) = std::env::var("PRKB_CRASH_POINT") else {
            return Self::disabled();
        };
        let (name, nth) = match spec.split_once(':') {
            Some((n, c)) => (n, c.trim().parse::<u64>().unwrap_or(1)),
            None => (spec.as_str(), 1),
        };
        match CrashPoint::parse(name) {
            Some(p) => Self::at_nth(p, nth),
            None => Self::disabled(),
        }
    }

    /// Whether any crash is scheduled.
    pub fn is_armed(&self) -> bool {
        self.target.is_some()
    }

    /// Declares that execution reached `point`; returns the crash error if
    /// the schedule says the process dies here.
    pub fn fire(&self, point: CrashPoint) -> Result<(), DurabilityError> {
        if let Some((target, nth)) = self.target {
            if target == point && self.hits.fetch_add(1, Ordering::Relaxed) + 1 == nth {
                return Err(DurabilityError::Crash(point));
            }
        }
        Ok(())
    }
}

/// What recovery found at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly at a record boundary.
    Clean,
    /// A partial or checksum-failing final record was discarded (the
    /// expected residue of a crash mid-append — never an acknowledged one).
    TornDiscarded,
}

/// An open write-ahead log.
///
/// Record frame (all little-endian): `len u32 | crc32 u32 | payload`, where
/// the checksum covers `len || payload` so a damaged length field cannot
/// misframe silently. The file starts with an 8-byte header
/// (`"PWAL" | version u16 | reserved u16`).
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    crash: CrashInjector,
    records: u64,
    bytes: u64,
    /// Why this handle is poisoned, when it is. Set by the first failed
    /// write or sync; every later append/sync returns
    /// [`DurabilityError::SyncFailed`] with this reason.
    poison: Option<String>,
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating any existing file),
    /// with the header already durable, on the production filesystem.
    pub fn create(path: &Path, crash: CrashInjector) -> Result<Wal, DurabilityError> {
        Self::create_on(&RealFs, path, crash)
    }

    /// [`create`](Self::create) on an arbitrary [`StorageFs`].
    pub fn create_on(
        fs: &dyn StorageFs,
        path: &Path,
        crash: CrashInjector,
    ) -> Result<Wal, DurabilityError> {
        let mut file = fs.create_file(path)?;
        file.write_all(&wal_header())?;
        file.sync_all()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            crash,
            records: 0,
            bytes: WAL_HEADER_LEN,
            poison: None,
        })
    }

    /// Opens an existing log, scans it, and returns the log positioned for
    /// appending plus every valid payload in order.
    ///
    /// A torn tail (partial / checksum-failing *final* record) is physically
    /// truncated away and reported as [`TailStatus::TornDiscarded`]. A bad
    /// record with valid data after it is [`DurabilityError::CorruptRecord`]
    /// — recovery refuses to reorder or skip committed history.
    pub fn open(
        path: &Path,
        crash: CrashInjector,
    ) -> Result<(Wal, Vec<Vec<u8>>, TailStatus), DurabilityError> {
        Self::open_on(&RealFs, path, crash)
    }

    /// [`open`](Self::open) on an arbitrary [`StorageFs`].
    pub fn open_on(
        fs: &dyn StorageFs,
        path: &Path,
        crash: CrashInjector,
    ) -> Result<(Wal, Vec<Vec<u8>>, TailStatus), DurabilityError> {
        let mut file = fs.open_file(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if (bytes.len() as u64) < WAL_HEADER_LEN {
            // Torn creation: a crash or I/O fault died inside `create_on`
            // before the header became durable. The header is synced before
            // any append is accepted, so no record was ever acknowledged
            // through this file — rebuild it empty instead of refusing
            // recovery. A *complete* header with wrong magic/version still
            // fails below: that is corruption, not a tear.
            file.set_len(0)?;
            file.seek_start(0)?;
            file.write_all(&wal_header())?;
            file.sync_all()?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                    crash,
                    records: 0,
                    bytes: WAL_HEADER_LEN,
                    poison: None,
                },
                Vec::new(),
                TailStatus::TornDiscarded,
            ));
        }
        let (payloads, valid_len, tail) = scan_records(&bytes)?;
        if valid_len < bytes.len() as u64 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek_start(valid_len)?;
        let records = payloads.len() as u64;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                crash,
                records,
                bytes: valid_len,
                poison: None,
            },
            payloads,
            tail,
        ))
    }

    /// Appends one record and makes it durable. On `Ok`, the payload
    /// survives any subsequent crash; callers release the covered result
    /// only after this returns.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurabilityError> {
        self.append_unsynced(payload)?;
        self.sync()
    }

    /// Appends one record **without** fsync'ing it. The record is framed and
    /// written, but a crash before the next [`sync`](Self::sync) may lose it
    /// (recovery sees at most a torn tail, never misframing — writes land in
    /// append order). Group commit uses this to write a whole batch and pay
    /// for one fsync.
    pub fn append_unsynced(&mut self, payload: &[u8]) -> Result<(), DurabilityError> {
        assert!(
            payload.len() as u64 <= u64::from(MAX_RECORD_LEN),
            "WAL record over MAX_RECORD_LEN"
        );
        self.check_poison()?;
        self.crash.fire(CrashPoint::BeforeWalAppend)?;
        let len = (payload.len() as u32).to_le_bytes();
        let mut covered = Vec::with_capacity(4 + payload.len());
        covered.extend_from_slice(&len);
        covered.extend_from_slice(payload);
        let crc = crc32(&covered).to_le_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&crc);
        frame.extend_from_slice(payload);

        if let Err(e) = self.crash.fire(CrashPoint::MidWalAppend) {
            // Torn write: a strict prefix of the frame reaches the disk
            // before the process dies.
            let torn = (frame.len() / 2).max(1).min(frame.len() - 1);
            if let Err(ioe) = self.file.write_all(&frame[..torn]) {
                self.poison = Some(format!("torn append write failed: {ioe}"));
                return Err(DurabilityError::Io(ioe));
            }
            if let Err(ioe) = self.file.sync_all() {
                // make the torn state visible to reopen
                return Err(self.poison_sync("sync_all", &ioe));
            }
            return Err(e);
        }
        if let Err(ioe) = self.file.write_all(&frame) {
            // An unknown prefix of the frame may be on disk; a later append
            // would land after garbage and turn a torn tail into mid-log
            // corruption. Poison the handle so that cannot happen.
            self.poison = Some(format!("append write failed: {ioe}"));
            return Err(DurabilityError::Io(ioe));
        }
        self.crash.fire(CrashPoint::AfterWalAppend)?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs everything appended so far (the group-commit barrier). On
    /// `Ok`, every previously appended record survives any subsequent crash.
    ///
    /// On `Err` the handle is permanently poisoned: the kernel may have
    /// discarded the dirty pages, so nothing appended since the last
    /// successful sync can ever be acknowledged from this handle.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.check_poison()?;
        if let Err(ioe) = self.file.sync_data() {
            return Err(self.poison_sync("sync_data", &ioe));
        }
        self.crash.fire(CrashPoint::AfterWalSync)?;
        Ok(())
    }

    /// Whether a failed write or sync has permanently poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    fn check_poison(&self) -> Result<(), DurabilityError> {
        match &self.poison {
            Some(why) => Err(DurabilityError::SyncFailed(why.clone())),
            None => Ok(()),
        }
    }

    fn poison_sync(&mut self, op: &str, e: &std::io::Error) -> DurabilityError {
        let why = format!("{op} on {}: {e}", self.path.display());
        self.poison = Some(why.clone());
        DurabilityError::SyncFailed(why)
    }

    /// Records appended or recovered so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total valid bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The injector this log fires.
    pub fn crash_injector(&self) -> &CrashInjector {
        &self.crash
    }
}

/// Scans a WAL byte image: returns the valid payloads, the byte length of
/// the valid prefix, and the tail status.
///
/// # Errors
/// [`DurabilityError::BadWalHeader`] on a bad header;
/// [`DurabilityError::CorruptRecord`] when a bad record is followed by
/// valid data (mid-log corruption).
pub fn scan_records(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, u64, TailStatus), DurabilityError> {
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[..4] != WAL_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != WAL_VERSION
    {
        return Err(DurabilityError::BadWalHeader);
    }
    let mut payloads = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        match frame_at(bytes, pos) {
            FrameStatus::End => return Ok((payloads, pos as u64, TailStatus::Clean)),
            FrameStatus::Valid { payload, next } => {
                payloads.push(payload.to_vec());
                pos = next;
            }
            FrameStatus::Bad { reason, skip_to } => {
                // Tail damage or mid-log corruption? If any *valid* frame
                // exists past the bad one, committed records would be lost
                // by truncating here — that is corruption, not a torn tail.
                if skip_to.is_some_and(|o| chain_has_valid_frame(bytes, o)) {
                    return Err(DurabilityError::CorruptRecord {
                        record: payloads.len() as u64,
                        offset: pos as u64,
                        reason,
                    });
                }
                return Ok((payloads, pos as u64, TailStatus::TornDiscarded));
            }
        }
    }
}

enum FrameStatus<'a> {
    /// Offset is exactly at end-of-image.
    End,
    /// A well-formed frame.
    Valid { payload: &'a [u8], next: usize },
    /// A damaged frame; `skip_to` is the end offset its length field claims
    /// (when that offset is in bounds).
    Bad {
        reason: &'static str,
        skip_to: Option<usize>,
    },
}

fn frame_at(bytes: &[u8], pos: usize) -> FrameStatus<'_> {
    let rem = bytes.len() - pos;
    if rem == 0 {
        return FrameStatus::End;
    }
    if rem < 8 {
        return FrameStatus::Bad {
            reason: "truncated frame header",
            skip_to: None,
        };
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_LEN as usize {
        return FrameStatus::Bad {
            reason: "implausible record length",
            skip_to: None,
        };
    }
    let Some(end) = pos.checked_add(8 + len).filter(|&e| e <= bytes.len()) else {
        return FrameStatus::Bad {
            reason: "record extends past end of log",
            skip_to: None,
        };
    };
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
    let mut covered = Vec::with_capacity(4 + len);
    covered.extend_from_slice(&bytes[pos..pos + 4]);
    covered.extend_from_slice(&bytes[pos + 8..end]);
    if crc32(&covered) != crc {
        return FrameStatus::Bad {
            reason: "checksum mismatch",
            skip_to: Some(end),
        };
    }
    FrameStatus::Valid {
        payload: &bytes[pos + 8..end],
        next: end,
    }
}

/// Whether any valid frame exists in `bytes[from..]` (used to tell a torn
/// tail from mid-log corruption).
fn chain_has_valid_frame(bytes: &[u8], mut from: usize) -> bool {
    loop {
        match frame_at(bytes, from) {
            FrameStatus::Valid { .. } => return true,
            FrameStatus::End | FrameStatus::Bad { skip_to: None, .. } => return false,
            FrameStatus::Bad {
                skip_to: Some(next),
                ..
            } => {
                if next <= from {
                    return false;
                }
                from = next;
            }
        }
    }
}

/// One CRC-valid frame found by [`scan_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Zero-based record index.
    pub index: u64,
    /// Byte offset of the frame header within the image.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// Overall classification of a WAL byte image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalVerdict {
    /// Every frame checks out and the image ends on a record boundary.
    Clean,
    /// The *final* record is partial or checksum-failing — normal crash
    /// residue; recovery truncates it without losing acknowledged state.
    TornTail,
    /// A bad frame is *followed by* valid data: damage inside the committed
    /// prefix (bitrot or tampering). Recovery refuses to open such a log.
    MidLogCorruption,
    /// The image has no recognizable WAL header.
    BadHeader,
}

impl WalVerdict {
    /// Stable lowercase name (scrub reports, `walinspect` output).
    pub fn name(self) -> &'static str {
        match self {
            WalVerdict::Clean => "clean",
            WalVerdict::TornTail => "torn_tail",
            WalVerdict::MidLogCorruption => "mid_log_corruption",
            WalVerdict::BadHeader => "bad_header",
        }
    }
}

/// Details of the first damaged frame, when any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadFrame {
    /// Zero-based index the damaged frame would have had.
    pub index: u64,
    /// Byte offset where it starts.
    pub offset: u64,
    /// What failed.
    pub reason: &'static str,
}

/// Frame-by-frame scan result: every valid frame plus a damage verdict.
///
/// Unlike [`scan_records`], producing this never errors — the scrubber and
/// `walinspect` need to *classify* a damaged image, not refuse to look
/// at it.
#[derive(Debug, Clone)]
pub struct FrameScan {
    /// Every CRC-valid frame, in order.
    pub frames: Vec<FrameInfo>,
    /// Byte length of the valid prefix (header included); 0 for
    /// [`WalVerdict::BadHeader`].
    pub valid_len: u64,
    /// Overall classification of the image.
    pub verdict: WalVerdict,
    /// The first damaged frame (`TornTail` / `MidLogCorruption` only).
    pub bad: Option<BadFrame>,
}

/// Scans a WAL image frame by frame, classifying rather than erroring.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[..4] != WAL_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != WAL_VERSION
    {
        return FrameScan {
            frames: Vec::new(),
            valid_len: 0,
            verdict: WalVerdict::BadHeader,
            bad: None,
        };
    }
    let mut frames = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        match frame_at(bytes, pos) {
            FrameStatus::End => {
                return FrameScan {
                    frames,
                    valid_len: pos as u64,
                    verdict: WalVerdict::Clean,
                    bad: None,
                }
            }
            FrameStatus::Valid { payload, next } => {
                frames.push(FrameInfo {
                    index: frames.len() as u64,
                    offset: pos as u64,
                    len: payload.len() as u32,
                });
                pos = next;
            }
            FrameStatus::Bad { reason, skip_to } => {
                let verdict = if skip_to.is_some_and(|o| chain_has_valid_frame(bytes, o)) {
                    WalVerdict::MidLogCorruption
                } else {
                    WalVerdict::TornTail
                };
                return FrameScan {
                    bad: Some(BadFrame {
                        index: frames.len() as u64,
                        offset: pos as u64,
                        reason,
                    }),
                    frames,
                    valid_len: pos as u64,
                    verdict,
                };
            }
        }
    }
}

/// Atomically replaces `final_name` in `dir` with `payload`: temp write,
/// fsync, rename, directory fsync. A crash at any hook leaves either the
/// previous file or the new one fully intact — never a mix — because the
/// rename only happens after the temp file is durable.
pub fn write_checkpoint(
    dir: &Path,
    final_name: &str,
    payload: &[u8],
    crash: &CrashInjector,
) -> Result<PathBuf, DurabilityError> {
    write_checkpoint_on(&RealFs, dir, final_name, payload, crash)
}

/// [`write_checkpoint`] on an arbitrary [`StorageFs`].
///
/// Any failed sync (`sync_all` on the temp file, or the directory fsync
/// that makes the rename durable) surfaces as
/// [`DurabilityError::SyncFailed`]: the rotation is aborted and — because
/// the rename is the last fallible publish step for the file sync — the
/// previous checkpoint + WAL pair stays intact and readable.
pub fn write_checkpoint_on(
    fs: &dyn StorageFs,
    dir: &Path,
    final_name: &str,
    payload: &[u8],
    crash: &CrashInjector,
) -> Result<PathBuf, DurabilityError> {
    let tmp = dir.join(format!("{final_name}.tmp"));
    let dst = dir.join(final_name);
    crash.fire(CrashPoint::BeforeCheckpointWrite)?;
    let mut file = fs.create_file(&tmp)?;
    if let Err(e) = crash.fire(CrashPoint::MidCheckpointWrite) {
        let torn = (payload.len() / 2).min(payload.len().saturating_sub(1));
        file.write_all(&payload[..torn])?;
        file.sync_all()?;
        return Err(e);
    }
    file.write_all(payload)?;
    crash.fire(CrashPoint::AfterCheckpointWrite)?;
    file.sync_all().map_err(|e| {
        DurabilityError::SyncFailed(format!("checkpoint sync_all on {}: {e}", tmp.display()))
    })?;
    drop(file);
    crash.fire(CrashPoint::AfterCheckpointSync)?;
    fs.rename(&tmp, &dst)?;
    crash.fire(CrashPoint::AfterCheckpointRename)?;
    // Make the rename itself durable.
    fs.sync_dir(dir).map_err(|e| {
        DurabilityError::SyncFailed(format!("directory fsync on {}: {e}", dir.display()))
    })?;
    Ok(dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prkb-edbms-dur-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        for i in 0..20u32 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        assert_eq!(wal.records(), 20);
        drop(wal);
        let (wal, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(wal.records(), 20);
        let expect: Vec<Vec<u8>> = (0..20u32).map(|i| i.to_le_bytes().to_vec()).collect();
        assert_eq!(payloads, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payloads_are_legal_records() {
        let dir = tmpdir("empty");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(&[]).expect("append empty");
        wal.append(b"x").expect("append");
        drop(wal);
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(payloads, vec![Vec::new(), b"x".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(b"first").expect("append");
        wal.append(b"second").expect("append");
        drop(wal);
        // Chop the last record in half.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("write");
        let (wal, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(tail, TailStatus::TornDiscarded);
        assert_eq!(payloads, vec![b"first".to_vec()]);
        // The torn bytes are physically gone; a fresh append lands cleanly.
        let mut wal = wal;
        wal.append(b"third").expect("append after truncate");
        drop(wal);
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen 2");
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(payloads, vec![b"first".to_vec(), b"third".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_bit_flip_is_discarded_but_mid_log_flip_is_fatal() {
        let dir = tmpdir("flips");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(&[0xAA; 32]).expect("append");
        wal.append(&[0xBB; 32]).expect("append");
        wal.append(&[0xCC; 32]).expect("append");
        drop(wal);
        let good = std::fs::read(&path).expect("read");

        // Flip a bit inside the LAST record's payload: torn-tail semantics.
        let mut tail_flip = good.clone();
        let last_payload_mid = good.len() - 16;
        tail_flip[last_payload_mid] ^= 0x01;
        std::fs::write(&path, &tail_flip).expect("write");
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(tail, TailStatus::TornDiscarded);
        assert_eq!(payloads.len(), 2, "first two records survive");

        // Flip a bit inside the FIRST record: valid records follow ⇒ hard
        // error, the log refuses to open.
        let mut mid_flip = good.clone();
        mid_flip[WAL_HEADER_LEN as usize + 8 + 4] ^= 0x01;
        std::fs::write(&path, &mid_flip).expect("write");
        let err = Wal::open(&path, CrashInjector::disabled()).expect_err("must refuse");
        assert!(
            matches!(err, DurabilityError::CorruptRecord { record: 0, .. }),
            "unexpected: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn length_field_damage_on_tail_is_discarded() {
        let dir = tmpdir("lenflip");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(&[1u8; 16]).expect("append");
        wal.append(&[2u8; 16]).expect("append");
        drop(wal);
        let mut bytes = std::fs::read(&path).expect("read");
        // Blow up the last record's length field to an absurd value.
        let last_frame = bytes.len() - 24;
        bytes[last_frame..last_frame + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(tail, TailStatus::TornDiscarded);
        assert_eq!(payloads, vec![vec![1u8; 16]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_headers_rejected() {
        let dir = tmpdir("hdr");
        let path = dir.join("wal.0.log");
        // A complete header with wrong magic or version is corruption.
        std::fs::write(&path, b"nope\x00\x00\x00\x00").expect("write");
        assert!(matches!(
            Wal::open(&path, CrashInjector::disabled()),
            Err(DurabilityError::BadWalHeader)
        ));
        std::fs::write(&path, b"PWAL\xFF\xFF\x00\x00").expect("write");
        assert!(matches!(
            Wal::open(&path, CrashInjector::disabled()),
            Err(DurabilityError::BadWalHeader)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sub_header_file_is_a_torn_creation_and_rebuilds_empty() {
        let dir = tmpdir("torncreate");
        let path = dir.join("wal.0.log");
        // A crash or I/O fault inside create_on leaves fewer than 8 bytes;
        // nothing was ever acknowledged, so reopen rebuilds an empty log.
        std::fs::write(&path, b"PWA").expect("write");
        let (mut wal, payloads, tail) =
            Wal::open(&path, CrashInjector::disabled()).expect("torn creation reopens");
        assert!(payloads.is_empty());
        assert_eq!(tail, TailStatus::TornDiscarded);
        wal.append(b"first").expect("rebuilt log accepts appends");
        drop(wal);
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert_eq!(payloads, vec![b"first".to_vec()]);
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_write_recovers_previous_records() {
        let dir = tmpdir("injtorn");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(b"committed").expect("append");
        drop(wal);
        // Reopen with a scheduled torn write on the next append.
        let (mut wal, _, _) =
            Wal::open(&path, CrashInjector::at(CrashPoint::MidWalAppend)).expect("reopen");
        let err = wal
            .append(b"doomed-record-payload")
            .expect_err("must crash");
        assert!(matches!(
            err,
            DurabilityError::Crash(CrashPoint::MidWalAppend)
        ));
        drop(wal);
        // The torn record is on disk; recovery discards exactly it.
        let (_, payloads, tail) = Wal::open(&path, CrashInjector::disabled()).expect("recover");
        assert_eq!(tail, TailStatus::TornDiscarded);
        assert_eq!(payloads, vec![b"committed".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_injector_counts_hits_across_clones() {
        let inj = CrashInjector::at_nth(CrashPoint::AfterWalSync, 3);
        let clone = inj.clone();
        assert!(inj.fire(CrashPoint::AfterWalSync).is_ok());
        assert!(clone.fire(CrashPoint::AfterWalSync).is_ok());
        assert!(
            inj.fire(CrashPoint::BeforeWalAppend).is_ok(),
            "other points never fire"
        );
        assert!(
            clone.fire(CrashPoint::AfterWalSync).is_err(),
            "3rd hit fires"
        );
        assert!(
            inj.fire(CrashPoint::AfterWalSync).is_ok(),
            "fires at most once"
        );
    }

    #[test]
    fn crash_point_names_roundtrip() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.name()), Some(p), "{p}");
        }
        assert_eq!(CrashPoint::parse("nonsense"), None);
    }

    #[test]
    fn checkpoint_write_is_atomic_under_crashes() {
        let dir = tmpdir("ckpt");
        // Seed an old checkpoint.
        write_checkpoint(&dir, "checkpoint.bin", b"OLD", &CrashInjector::disabled()).expect("seed");
        for point in [
            CrashPoint::BeforeCheckpointWrite,
            CrashPoint::MidCheckpointWrite,
            CrashPoint::AfterCheckpointWrite,
            CrashPoint::AfterCheckpointSync,
        ] {
            let err = write_checkpoint(
                &dir,
                "checkpoint.bin",
                b"NEW-CHECKPOINT-PAYLOAD",
                &CrashInjector::at(point),
            )
            .expect_err("must crash");
            assert!(matches!(err, DurabilityError::Crash(_)));
            let on_disk = std::fs::read(dir.join("checkpoint.bin")).expect("read");
            assert_eq!(
                on_disk, b"OLD",
                "crash at {point} must keep the old file whole"
            );
        }
        // Crash after the rename: the NEW file is fully in place.
        let err = write_checkpoint(
            &dir,
            "checkpoint.bin",
            b"NEW-CHECKPOINT-PAYLOAD",
            &CrashInjector::at(CrashPoint::AfterCheckpointRename),
        )
        .expect_err("must crash");
        assert!(matches!(
            err,
            DurabilityError::Crash(CrashPoint::AfterCheckpointRename)
        ));
        let on_disk = std::fs::read(dir.join("checkpoint.bin")).expect("read");
        assert_eq!(on_disk, b"NEW-CHECKPOINT-PAYLOAD");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A [`StorageFs`] whose files fail every sync after the first
    /// `ok_syncs` — the smallest possible model of a dying disk.
    #[derive(Debug)]
    struct FlakySyncFs {
        ok_syncs: u64,
        counter: Arc<AtomicU64>,
    }

    #[derive(Debug)]
    struct FlakySyncFile {
        inner: Box<dyn StorageFile>,
        ok_syncs: u64,
        counter: Arc<AtomicU64>,
    }

    impl FlakySyncFile {
        fn tick(&self) -> std::io::Result<()> {
            if self.counter.fetch_add(1, Ordering::Relaxed) >= self.ok_syncs {
                Err(std::io::Error::other("injected EIO on fsync"))
            } else {
                Ok(())
            }
        }
    }

    impl StorageFile for FlakySyncFile {
        fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
            self.inner.write_all(buf)
        }
        fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
            self.inner.read_to_end(buf)
        }
        fn sync_data(&mut self) -> std::io::Result<()> {
            self.tick()?;
            self.inner.sync_data()
        }
        fn sync_all(&mut self) -> std::io::Result<()> {
            self.tick()?;
            self.inner.sync_all()
        }
        fn set_len(&mut self, len: u64) -> std::io::Result<()> {
            self.inner.set_len(len)
        }
        fn seek_start(&mut self, pos: u64) -> std::io::Result<()> {
            self.inner.seek_start(pos)
        }
    }

    impl StorageFs for FlakySyncFs {
        fn create_file(&self, path: &Path) -> std::io::Result<Box<dyn StorageFile>> {
            Ok(Box::new(FlakySyncFile {
                inner: RealFs.create_file(path)?,
                ok_syncs: self.ok_syncs,
                counter: Arc::clone(&self.counter),
            }))
        }
        fn open_file(&self, path: &Path) -> std::io::Result<Box<dyn StorageFile>> {
            Ok(Box::new(FlakySyncFile {
                inner: RealFs.open_file(path)?,
                ok_syncs: self.ok_syncs,
                counter: Arc::clone(&self.counter),
            }))
        }
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            RealFs.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            RealFs.write(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            RealFs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            RealFs.remove_file(path)
        }
        fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
            RealFs.create_dir_all(path)
        }
        fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
            RealFs.sync_dir(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            RealFs.exists(path)
        }
        fn read_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
            RealFs.read_dir(dir)
        }
    }

    #[test]
    fn failed_sync_poisons_wal_and_never_acks_again() {
        let dir = tmpdir("synfail");
        let path = dir.join("wal.0.log");
        // Creation syncs once (the header); the next sync — the first
        // commit barrier — fails.
        let fs = FlakySyncFs {
            ok_syncs: 1,
            counter: Arc::new(AtomicU64::new(0)),
        };
        let mut wal = Wal::create_on(&fs, &path, CrashInjector::disabled()).expect("create");
        let err = wal.append(b"doomed").expect_err("sync must fail");
        assert!(
            matches!(err, DurabilityError::SyncFailed(_)),
            "unexpected: {err}"
        );
        assert!(wal.is_poisoned());
        // Poisoned handles refuse everything, even operations whose own
        // syscalls would succeed: no retry-and-assume-durable.
        let err = wal.append_unsynced(b"after").expect_err("poisoned");
        assert!(matches!(err, DurabilityError::SyncFailed(_)));
        let err = wal.sync().expect_err("poisoned");
        assert!(matches!(err, DurabilityError::SyncFailed(_)));
        drop(wal);
        // Reopen on a healthy filesystem: the unacknowledged record may or
        // may not have reached the platter; either way the log opens and
        // holds only whole frames.
        let (_, payloads, _) = Wal::open(&path, CrashInjector::disabled()).expect("reopen");
        assert!(payloads.len() <= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_checkpoint_sync_aborts_rotation_with_old_file_intact() {
        let dir = tmpdir("ckptsyncfail");
        write_checkpoint(&dir, "checkpoint.bin", b"OLD", &CrashInjector::disabled()).expect("seed");
        // The temp-file sync_all is the first sync in the rotation.
        let fs = FlakySyncFs {
            ok_syncs: 0,
            counter: Arc::new(AtomicU64::new(0)),
        };
        let err = write_checkpoint_on(
            &fs,
            &dir,
            "checkpoint.bin",
            b"NEW",
            &CrashInjector::disabled(),
        )
        .expect_err("sync must fail");
        assert!(matches!(err, DurabilityError::SyncFailed(_)));
        assert_eq!(
            std::fs::read(dir.join("checkpoint.bin")).expect("read"),
            b"OLD",
            "aborted rotation must leave the previous checkpoint live"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_frames_classifies_every_damage_shape() {
        let dir = tmpdir("frames");
        let path = dir.join("wal.0.log");
        let mut wal = Wal::create(&path, CrashInjector::disabled()).expect("create");
        wal.append(&[0xAA; 24]).expect("append");
        wal.append(&[0xBB; 24]).expect("append");
        wal.append(&[0xCC; 24]).expect("append");
        drop(wal);
        let good = std::fs::read(&path).expect("read");

        let scan = scan_frames(&good);
        assert_eq!(scan.verdict, WalVerdict::Clean);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, good.len() as u64);
        assert_eq!(scan.frames[0].offset, WAL_HEADER_LEN);
        assert_eq!(scan.frames[0].len, 24);
        assert!(scan.bad.is_none());

        // Chop the tail: TornTail with two survivors.
        let scan = scan_frames(&good[..good.len() - 5]);
        assert_eq!(scan.verdict, WalVerdict::TornTail);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.bad.expect("bad frame").index, 2);

        // Flip a byte in the first record: MidLogCorruption at index 0.
        let mut flipped = good.clone();
        flipped[WAL_HEADER_LEN as usize + 8] ^= 0x01;
        let scan = scan_frames(&flipped);
        assert_eq!(scan.verdict, WalVerdict::MidLogCorruption);
        assert!(scan.frames.is_empty());
        let bad = scan.bad.expect("bad frame");
        assert_eq!((bad.index, bad.offset), (0, WAL_HEADER_LEN));

        // Garbage image: BadHeader.
        assert_eq!(scan_frames(b"nope").verdict, WalVerdict::BadHeader);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn env_spec_parsing() {
        // Parsed manually (no process-global env mutation in tests): the
        // spec grammar is `<name>` or `<name>:<nth>`.
        let inj = CrashInjector::at_nth(CrashPoint::AfterWalSync, 2);
        assert!(inj.is_armed());
        assert!(!CrashInjector::disabled().is_armed());
        assert_eq!(
            CrashPoint::parse(" after_wal_sync "),
            Some(CrashPoint::AfterWalSync)
        );
    }
}
