//! Encrypted table storage at the service provider.
//!
//! Each attribute column is a flat byte buffer of fixed-width ciphertexts
//! ([`prkb_crypto::cipher::CIPHERTEXT_LEN`] bytes per cell): no per-cell
//! allocation, cache-friendly scans, and byte-exact storage accounting for
//! the paper's Table 3 measurements.

use crate::error::EdbmsError;
use crate::schema::{AttrId, Schema, TupleId};
use prkb_crypto::cipher::CIPHERTEXT_LEN;

/// One encrypted column: a flat buffer of fixed-width ciphertext cells.
#[derive(Debug, Clone, Default)]
pub struct EncryptedColumn {
    data: Vec<u8>,
}

impl EncryptedColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column with capacity for `n` cells.
    pub fn with_capacity(n: usize) -> Self {
        EncryptedColumn {
            data: Vec::with_capacity(n * CIPHERTEXT_LEN),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len() / CIPHERTEXT_LEN
    }

    /// Whether the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends an already-encrypted cell (exactly one ciphertext width).
    ///
    /// # Panics
    /// Panics if `cell` is not exactly [`CIPHERTEXT_LEN`] bytes — cells are
    /// produced by the owner-side cipher, so any other width is a bug.
    pub fn push_cell(&mut self, cell: &[u8]) {
        assert_eq!(cell.len(), CIPHERTEXT_LEN, "cell width");
        self.data.extend_from_slice(cell);
    }

    /// Mutable access to the raw buffer for bulk encryption
    /// (`ValueCipher::encrypt_into` appends directly).
    pub(crate) fn raw_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Borrows cell `t`.
    pub fn cell(&self, t: TupleId) -> Option<&[u8]> {
        let start = t as usize * CIPHERTEXT_LEN;
        self.data.get(start..start + CIPHERTEXT_LEN)
    }

    /// Storage consumed by this column in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.data.len()
    }
}

/// The encrypted table held by the service provider.
///
/// Tuple ids are stable: deletion leaves a tombstone, insertion appends.
#[derive(Debug, Clone)]
pub struct EncryptedTable {
    schema: Schema,
    columns: Vec<EncryptedColumn>,
    live: Vec<bool>,
}

impl EncryptedTable {
    /// Creates an empty encrypted table (used by the data owner during
    /// encryption; the service provider receives the result).
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| EncryptedColumn::new()).collect();
        EncryptedTable {
            schema,
            columns,
            live: Vec::new(),
        }
    }

    /// Creates an empty table pre-sized for `n` rows.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| EncryptedColumn::with_capacity(n))
            .collect();
        EncryptedTable {
            schema,
            columns,
            live: Vec::with_capacity(n),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of tuple slots, including tombstones.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the table has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of live (non-deleted) tuples.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Whether tuple `t` exists and has not been deleted.
    pub fn is_live(&self, t: TupleId) -> bool {
        self.live.get(t as usize).copied().unwrap_or(false)
    }

    /// Marks tuple `t` deleted (id is never reused).
    ///
    /// # Errors
    /// Returns [`EdbmsError::TupleOutOfRange`] if `t` does not exist.
    pub fn delete(&mut self, t: TupleId) -> Result<(), EdbmsError> {
        let len = self.live.len();
        let slot = self
            .live
            .get_mut(t as usize)
            .ok_or(EdbmsError::TupleOutOfRange { tuple: t, len })?;
        *slot = false;
        Ok(())
    }

    /// Appends a row of pre-encrypted cells, returning the new tuple id.
    ///
    /// # Errors
    /// Returns [`EdbmsError::ArityMismatch`] on a wrong-width row.
    pub fn push_encrypted_row(&mut self, cells: &[&[u8]]) -> Result<TupleId, EdbmsError> {
        if cells.len() != self.schema.arity() {
            return Err(EdbmsError::ArityMismatch {
                expected: self.schema.arity(),
                actual: cells.len(),
            });
        }
        for (col, cell) in self.columns.iter_mut().zip(cells) {
            col.push_cell(cell);
        }
        self.live.push(true);
        Ok((self.live.len() - 1) as TupleId)
    }

    /// Internal bulk-load hook used by the data owner: appends directly into
    /// the raw column buffer and registers `n` live rows.
    pub(crate) fn bulk_load(&mut self, fill: impl FnOnce(&mut [EncryptedColumn]) -> usize) {
        let n = fill(&mut self.columns);
        self.live.extend(std::iter::repeat_n(true, n));
        debug_assert!(self
            .columns
            .iter()
            .all(|c| c.len() == self.live.len()), "ragged bulk load");
    }

    /// Borrows the ciphertext cell for (`attr`, `t`).
    ///
    /// # Errors
    /// Returns an out-of-range error for bad ids.
    pub fn cell(&self, attr: AttrId, t: TupleId) -> Result<&[u8], EdbmsError> {
        let col = self
            .columns
            .get(attr as usize)
            .ok_or(EdbmsError::AttrOutOfRange {
                attr,
                n_attrs: self.schema.arity(),
            })?;
        col.cell(t).ok_or(EdbmsError::TupleOutOfRange {
            tuple: t,
            len: self.len(),
        })
    }

    /// Iterator over live tuple ids.
    pub fn live_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.then_some(i as TupleId))
    }

    /// Storage consumed by the encrypted data in bytes (used as the
    /// denominator in the paper's §8.2.6 index-overhead ratios).
    pub fn storage_bytes(&self) -> usize {
        self.columns.iter().map(EncryptedColumn::storage_bytes).sum::<usize>()
            + self.live.len() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn fake_cell(b: u8) -> Vec<u8> {
        vec![b; CIPHERTEXT_LEN]
    }

    #[test]
    fn push_and_access() {
        let mut t = EncryptedTable::new(Schema::new("t", &["x", "y"]));
        let c0 = fake_cell(1);
        let c1 = fake_cell(2);
        let id = t.push_encrypted_row(&[&c0, &c1]).unwrap();
        assert_eq!(id, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.cell(0, 0).unwrap(), &c0[..]);
        assert_eq!(t.cell(1, 0).unwrap(), &c1[..]);
        assert!(t.cell(2, 0).is_err());
        assert!(t.cell(0, 1).is_err());
    }

    #[test]
    fn arity_checked() {
        let mut t = EncryptedTable::new(Schema::new("t", &["x", "y"]));
        let c0 = fake_cell(1);
        assert!(matches!(
            t.push_encrypted_row(&[&c0]),
            Err(EdbmsError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn tombstones() {
        let mut t = EncryptedTable::new(Schema::new("t", &["x"]));
        let c = fake_cell(7);
        t.push_encrypted_row(&[&c]).unwrap();
        t.push_encrypted_row(&[&c]).unwrap();
        t.delete(0).unwrap();
        assert!(!t.is_live(0));
        assert!(t.is_live(1));
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.live_ids().collect::<Vec<_>>(), vec![1]);
        assert!(t.delete(5).is_err());
        // The cell bytes are still addressable (tombstone, not compaction).
        assert!(t.cell(0, 0).is_ok());
    }

    #[test]
    fn column_cell_width_enforced() {
        let mut c = EncryptedColumn::new();
        c.push_cell(&fake_cell(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.storage_bytes(), CIPHERTEXT_LEN);
        let r = std::panic::catch_unwind(move || {
            let mut c2 = EncryptedColumn::new();
            c2.push_cell(&[0u8; 3]);
        });
        assert!(r.is_err());
    }
}
