//! Wire-level fsync-failure semantics: a poisoned shard must surface as a
//! stable error code on the connection — never a connection drop — while
//! requests routed to healthy shards keep succeeding on the same socket.

use prkb_core::storage::{real_fs, FaultFs, IoFaultKind, IoFaultRule, IoOp};
use prkb_core::{EngineConfig, ShardMap, ShardedDurablePool};
use prkb_edbms::durability::CrashInjector;
use prkb_edbms::testing::PlainOracle;
use prkb_edbms::{ComparisonOp, Predicate};
use prkb_server::{proto, ClientError, PrkbClient, PrkbServer, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const ROWS: usize = 200;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "prkb-storage-wire-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn columns() -> Vec<Vec<u64>> {
    vec![
        (0..ROWS as u64).map(|i| (i * 37) % ROWS as u64).collect(),
        (0..ROWS as u64).map(|i| (i * 101) % ROWS as u64).collect(),
    ]
}

#[test]
fn poisoned_shard_is_a_stable_wire_error_not_a_connection_drop() {
    let dir = TmpDir::new("poison");
    let oracle = PlainOracle::from_columns(columns());
    let map = ShardMap::new(4);
    let (sick_attr, healthy_attr) = (0u32, 1u32);
    let sick_shard = map.shard_of(sick_attr);
    assert_ne!(
        sick_shard,
        map.shard_of(healthy_attr),
        "test needs the two attributes on different shards"
    );
    // Let the init commit on the doomed shard through, then fail the
    // durability barrier of the first query commit it receives.
    let inits_on_sick = [sick_attr, healthy_attr]
        .iter()
        .filter(|&&a| map.shard_of(a) == sick_shard)
        .count() as u64;
    let faults = FaultFs::scripted(
        real_fs(),
        vec![IoFaultRule {
            op: Some(IoOp::SyncData),
            path_contains: Some(format!("shard.{sick_shard}/")),
            nth: inits_on_sick + 1,
            kind: IoFaultKind::Eio,
            sticky: false,
        }],
    );
    let mut pool = ShardedDurablePool::<Predicate>::open_with_storage(
        &dir.0,
        EngineConfig::default(),
        map,
        CrashInjector::disabled(),
        faults.handle(),
    )
    .expect("open pool");
    pool.init_attr(sick_attr, ROWS).expect("init");
    pool.init_attr(healthy_attr, ROWS).expect("init");

    let server =
        PrkbServer::bind_durable_pool("127.0.0.1:0", pool, oracle, ServerConfig::default())
            .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.spawn().expect("spawn");

    let mut client: PrkbClient<Predicate> = PrkbClient::connect(addr).expect("connect");

    // The armed fsync fails the first commit on the sick shard: the reply
    // is a structured SYNC_FAILED error, and the socket stays up.
    let err = client
        .select(1, Predicate::cmp(sick_attr, ComparisonOp::Lt, 120))
        .expect_err("sick shard must refuse");
    assert!(
        matches!(err, ClientError::Server { code, .. } if code == proto::code::SYNC_FAILED),
        "expected SYNC_FAILED wire code, got {err:?}"
    );

    // Same connection, healthy shard: still serving and committing.
    let reply = client
        .select(2, Predicate::cmp(healthy_attr, ComparisonOp::Lt, 90))
        .expect("healthy shard keeps serving on the same connection");
    assert_eq!(reply.tuples.len(), 90);

    // The poison is permanent for this pool: the injected fault is spent
    // (non-sticky), yet the sick shard still refuses with the same code —
    // no retry-and-assume-durable behind the wire.
    let err = client
        .select(3, Predicate::cmp(sick_attr, ComparisonOp::Gt, 150))
        .expect_err("poisoned shard must keep refusing");
    assert!(
        matches!(err, ClientError::Server { code, .. } if code == proto::code::SYNC_FAILED),
        "expected SYNC_FAILED wire code, got {err:?}"
    );

    // And the healthy shard is still unaffected afterwards.
    let reply = client
        .select(4, Predicate::cmp(healthy_attr, ComparisonOp::Gt, 160))
        .expect("healthy shard unaffected");
    assert_eq!(reply.tuples.len(), ROWS - 161);

    assert_eq!(faults.injected(), 1, "exactly the armed fault fired");

    // Shutdown's final flush honestly reports the poisoned shard instead
    // of acking a drain it cannot guarantee — but the server still drains
    // and exits; healthy shards' commits are already on disk.
    let err = client.shutdown().expect_err("drain over a poisoned shard");
    assert!(
        matches!(err, ClientError::Server { code, .. } if code == proto::code::SYNC_FAILED),
        "expected SYNC_FAILED from the final flush, got {err:?}"
    );
    match handle.join() {
        Ok(_) => panic!("join must not claim a clean drain over a poisoned shard"),
        Err(e) => assert!(
            e.to_string().contains("drain flush failed"),
            "join error must name the failed drain, got: {e}"
        ),
    }

    // Reopen over the real filesystem: the sick shard recovers its
    // committed prefix (the init), the healthy shard everything it acked.
    let pool =
        ShardedDurablePool::<Predicate>::open(&dir.0, EngineConfig::default(), ShardMap::new(4))
            .expect("reopen");
    let sick_engine = pool.shard_engine(sick_shard);
    let kb = sick_engine.knowledge(sick_attr).expect("attr indexed");
    kb.check_invariants();
    let healthy_engine = pool.shard_engine(map.shard_of(healthy_attr));
    let kb = healthy_engine
        .knowledge(healthy_attr)
        .expect("attr indexed");
    kb.check_invariants();
    assert!(
        kb.k() > 1,
        "healthy shard must have durably committed its refinements"
    );
}
