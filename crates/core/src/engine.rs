//! The PRKB engine: per-attribute knowledge bases behind one façade.
//!
//! This is the service-provider-side entry point a deployment would embed:
//! it owns one [`Knowledge`] per indexed attribute, routes incoming
//! trapdoors (comparison vs BETWEEN, single vs multi-dimensional), and
//! keeps the index maintained across inserts and deletes.

use crate::between::process_between;
use crate::insert::{insert_tuple, InsertOutcome};
use crate::knowledge::Knowledge;
use crate::md::{process_range_md, MdDim, MdUpdatePolicy};
use crate::sd::process_comparison;
use crate::sdplus::process_range_sdplus;
use crate::selection::Selection;
use crate::traits::SpPredicate;
use prkb_edbms::{AttrId, PredicateKind, SelectionOracle, TupleId};
use rand::Rng;
use std::collections::HashMap;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Whether single-dimension queries refine the index (`updatePRKB`).
    /// Disable for the paper's "static PRKB" experiments.
    pub update: bool,
    /// Refinement policy for multi-dimensional queries.
    pub md_policy: MdUpdatePolicy,
    /// Worker threads for batched QPF evaluation (`None` defers to the
    /// `PRKB_THREADS` environment variable). The engine itself is
    /// oracle-agnostic: deployments apply this knob when pairing the engine
    /// with its oracle, e.g. `SpOracle::with_threads`. Thread count never
    /// affects results or QPF-use counts — only wall-clock time.
    pub threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            update: true,
            md_policy: MdUpdatePolicy::PartialOnly,
            threads: None,
        }
    }
}

/// The per-table PRKB engine.
#[derive(Debug)]
pub struct PrkbEngine<P> {
    kbs: HashMap<AttrId, Knowledge<P>>,
    /// Engine configuration (mutable between queries).
    pub config: EngineConfig,
}

impl<P: SpPredicate> PrkbEngine<P> {
    /// Creates an engine with no attribute indexed yet.
    pub fn new(config: EngineConfig) -> Self {
        PrkbEngine {
            kbs: HashMap::new(),
            config,
        }
    }

    /// `initPRKB` for one attribute over a table of `n` tuples. Call once
    /// per attribute, right after the encrypted table is uploaded.
    pub fn init_attr(&mut self, attr: AttrId, n: usize) {
        self.kbs.insert(attr, Knowledge::init(n));
    }

    /// The knowledge base for `attr`, if initialized.
    pub fn knowledge(&self, attr: AttrId) -> Option<&Knowledge<P>> {
        self.kbs.get(&attr)
    }

    /// Attributes currently indexed.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.kbs.keys().copied()
    }

    /// Processes a single-predicate selection, dispatching on the trapdoor's
    /// SP-visible kind (comparison vs BETWEEN).
    ///
    /// # Panics
    /// Panics if the predicate's attribute was never initialized — indexing
    /// decisions are made at upload time in this engine.
    pub fn select<O, R>(&mut self, oracle: &O, pred: &P, rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let update = self.config.update;
        let kb = self
            .kbs
            .get_mut(&pred.attr())
            .unwrap_or_else(|| panic!("attribute {} not initialized", pred.attr()));
        match oracle.kind_of(pred) {
            PredicateKind::Comparison => process_comparison(kb, oracle, pred, rng, update),
            PredicateKind::Between => process_between(kb, oracle, pred, rng, update),
        }
    }

    /// Processes a d-dimensional range query with PRKB(MD) (paper §6.2).
    ///
    /// `dims` holds the two comparison trapdoors of each dimension.
    ///
    /// # Panics
    /// Panics on uninitialized attributes or duplicate dimensions.
    pub fn select_range_md<O, R>(&mut self, oracle: &O, dims: &[[P; 2]], rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let policy = self.config.md_policy;
        self.with_dims(dims, |md_dims| {
            process_range_md(md_dims, oracle, rng, policy)
        })
    }

    /// Processes a d-dimensional range query with the naive PRKB(SD+)
    /// extension (paper §6, baseline).
    ///
    /// # Panics
    /// Panics on uninitialized attributes or duplicate dimensions.
    pub fn select_range_sdplus<O, R>(
        &mut self,
        oracle: &O,
        dims: &[[P; 2]],
        rng: &mut R,
    ) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let update = self.config.update;
        self.with_dims(dims, |md_dims| {
            process_range_sdplus(md_dims, oracle, rng, update)
        })
    }

    fn with_dims<T>(&mut self, dims: &[[P; 2]], f: impl FnOnce(&mut [MdDim<P>]) -> T) -> T {
        let mut md_dims: Vec<MdDim<P>> = Vec::with_capacity(dims.len());
        for pair in dims {
            let attr = pair[0].attr();
            assert_eq!(attr, pair[1].attr(), "a dimension's trapdoors must share an attribute");
            let knowledge = self
                .kbs
                .remove(&attr)
                .unwrap_or_else(|| panic!("attribute {attr} not initialized or listed twice"));
            md_dims.push(MdDim {
                knowledge,
                preds: pair.clone(),
            });
        }
        let out = f(&mut md_dims);
        for (dim, pair) in md_dims.into_iter().zip(dims) {
            self.kbs.insert(pair[0].attr(), dim.knowledge);
        }
        out
    }

    /// Processes an arbitrary conjunction of trapdoors — the execution
    /// entry point for parsed SQL selections (`prkb_edbms::sql`).
    ///
    /// Attributes contributing exactly two comparison trapdoors are
    /// recognized as range dimensions and — when there are at least two such
    /// dimensions — executed with PRKB(MD); every remaining trapdoor
    /// (BETWEENs, lone comparisons) runs through the single-dimension
    /// pipeline, and the result sets are intersected.
    ///
    /// # Panics
    /// Panics if a referenced attribute was never initialized.
    pub fn select_conjunction<O, R>(&mut self, oracle: &O, preds: &[P], rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        use std::collections::BTreeMap;

        let n = oracle.n_slots();
        if preds.is_empty() {
            let tuples = (0..n as TupleId).filter(|&t| oracle.is_live(t)).collect();
            return Selection {
                tuples,
                ..Selection::default()
            };
        }
        let qpf_before = oracle.qpf_uses();
        let k_before: usize = self.kbs.values().map(Knowledge::k).sum();

        // Group comparison trapdoors per attribute, preserving order.
        let mut cmp_by_attr: BTreeMap<AttrId, Vec<P>> = BTreeMap::new();
        let mut singles: Vec<P> = Vec::new();
        for p in preds {
            match oracle.kind_of(p) {
                PredicateKind::Comparison => {
                    cmp_by_attr.entry(p.attr()).or_default().push(p.clone())
                }
                PredicateKind::Between => singles.push(p.clone()),
            }
        }
        let mut dims: Vec<[P; 2]> = Vec::new();
        for (_, mut group) in cmp_by_attr {
            // At most one pair per attribute: the MD grid owns each
            // attribute's knowledge exclusively, so further comparisons on
            // the same attribute run through the single-dimension pipeline.
            if group.len() >= 2 {
                let b = group.pop().expect("len >= 2");
                let a = group.pop().expect("len >= 1");
                dims.push([a, b]);
            }
            singles.extend(group);
        }

        let mut hits: Vec<u32> = vec![0; n];
        let mut parts = 0u32;
        let mut splits = 0usize;
        if dims.len() >= 2 {
            let sel = self.select_range_md(oracle, &dims, rng);
            splits += sel.stats.splits;
            parts += 1;
            for t in sel.tuples {
                hits[t as usize] += 1;
            }
        } else {
            // Not enough dimensions for the grid: run them individually.
            singles.extend(dims.into_iter().flatten());
        }
        for p in singles {
            let sel = self.select(oracle, &p, rng);
            splits += sel.stats.splits;
            parts += 1;
            for t in sel.tuples {
                hits[t as usize] += 1;
            }
        }

        let tuples: Vec<TupleId> = (0..n as TupleId)
            .filter(|&t| hits[t as usize] == parts)
            .collect();
        Selection {
            tuples,
            stats: crate::selection::QueryStats {
                qpf_uses: oracle.qpf_uses() - qpf_before,
                k_before,
                k_after: self.kbs.values().map(Knowledge::k).sum(),
                splits,
            },
        }
    }

    /// Routes a freshly inserted tuple into every indexed attribute
    /// (paper §7.1; O(β lg k) QPF uses in total).
    pub fn insert<O>(&mut self, oracle: &O, t: TupleId) -> Vec<(AttrId, InsertOutcome)>
    where
        O: SelectionOracle<Pred = P>,
    {
        let mut outcomes: Vec<(AttrId, InsertOutcome)> = self
            .kbs
            .iter_mut()
            .map(|(&attr, kb)| (attr, insert_tuple(kb, oracle, t)))
            .collect();
        outcomes.sort_by_key(|(a, _)| *a);
        outcomes
    }

    /// Removes a deleted tuple from every indexed attribute (paper §7.2).
    pub fn delete(&mut self, t: TupleId) {
        for kb in self.kbs.values_mut() {
            kb.delete(t);
        }
    }

    /// Total index storage across attributes (Table 3 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.kbs.values().map(Knowledge::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prkb_edbms::testing::PlainOracle;
    use prkb_edbms::{ComparisonOp, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_2d(n: usize, seed: u64) -> (PrkbEngine<Predicate>, PlainOracle) {
        let mut rng = StdRng::seed_from_u64(seed);
        let columns: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(0..1000u64)).collect())
            .collect();
        let oracle = PlainOracle::from_columns(columns);
        let mut engine = PrkbEngine::new(EngineConfig::default());
        engine.init_attr(0, n);
        engine.init_attr(1, n);
        (engine, oracle)
    }

    #[test]
    fn select_dispatches_comparison_and_between() {
        let (mut engine, oracle) = engine_2d(500, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let c = Predicate::cmp(0, ComparisonOp::Lt, 300);
        assert_eq!(
            engine.select(&oracle, &c, &mut rng).sorted(),
            oracle.expected_select(&c)
        );
        let b = Predicate::between(1, 100, 400);
        assert_eq!(
            engine.select(&oracle, &b, &mut rng).sorted(),
            oracle.expected_select(&b)
        );
    }

    #[test]
    fn md_and_sdplus_through_engine() {
        let (mut engine, oracle) = engine_2d(800, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [
            [
                Predicate::cmp(0, ComparisonOp::Gt, 200),
                Predicate::cmp(0, ComparisonOp::Lt, 600),
            ],
            [
                Predicate::cmp(1, ComparisonOp::Gt, 300),
                Predicate::cmp(1, ComparisonOp::Lt, 700),
            ],
        ];
        let flat: Vec<Predicate> = dims.iter().flatten().cloned().collect();
        let md = engine.select_range_md(&oracle, &dims, &mut rng);
        assert_eq!(md.sorted(), oracle.expected_conjunction(&flat));
        let sdp = engine.select_range_sdplus(&oracle, &dims, &mut rng);
        assert_eq!(sdp.sorted(), oracle.expected_conjunction(&flat));
        // Knowledge must be back in place for single-dim queries.
        let c = Predicate::cmp(0, ComparisonOp::Lt, 500);
        assert_eq!(
            engine.select(&oracle, &c, &mut rng).sorted(),
            oracle.expected_select(&c)
        );
    }

    #[test]
    fn insert_and_delete_maintain_all_attrs() {
        let (mut engine, mut oracle) = engine_2d(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Warm both attributes.
        for bound in [100u64, 500, 900] {
            for attr in 0..2u32 {
                let p = Predicate::cmp(attr, ComparisonOp::Lt, bound);
                engine.select(&oracle, &p, &mut rng);
            }
        }
        let t = oracle.insert(&[450, 777]);
        let outcomes = engine.insert(&oracle, t);
        assert_eq!(outcomes.len(), 2);
        let p = Predicate::cmp(0, ComparisonOp::Lt, 460);
        assert_eq!(engine.select(&oracle, &p, &mut rng).sorted(), oracle.expected_select(&p));

        oracle.delete(t);
        engine.delete(t);
        assert_eq!(engine.select(&oracle, &p, &mut rng).sorted(), oracle.expected_select(&p));
    }

    #[test]
    fn storage_accounting_scales_with_k() {
        let (mut engine, oracle) = engine_2d(1000, 7);
        let base = engine.storage_bytes();
        let mut rng = StdRng::seed_from_u64(8);
        for bound in [100u64, 300, 500, 700, 900] {
            engine.select(&oracle, &Predicate::cmp(0, ComparisonOp::Lt, bound), &mut rng);
        }
        assert!(engine.storage_bytes() > base);
    }

    #[test]
    fn select_conjunction_mixes_shapes() {
        let (mut engine, oracle) = engine_2d(600, 11);
        let mut rng = StdRng::seed_from_u64(12);
        // 2 range dims + a BETWEEN + a lone comparison on attr 0.
        let preds = vec![
            Predicate::cmp(0, ComparisonOp::Gt, 100),
            Predicate::cmp(0, ComparisonOp::Lt, 800),
            Predicate::cmp(1, ComparisonOp::Gt, 200),
            Predicate::cmp(1, ComparisonOp::Lt, 900),
            Predicate::between(0, 150, 700),
            Predicate::cmp(1, ComparisonOp::Ge, 250),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
        // Repeat: must stay correct with the now-warmed index.
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    fn select_conjunction_empty_is_full_scan() {
        let (mut engine, oracle) = engine_2d(50, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let sel = engine.select_conjunction(&oracle, &[], &mut rng);
        assert_eq!(sel.tuples.len(), 50);
        assert_eq!(sel.stats.qpf_uses, 0);
    }

    #[test]
    fn select_conjunction_many_predicates_per_attr() {
        // Regression (found by the `differ` harness): four comparisons on
        // one attribute must not build two MD dims over the same knowledge.
        let (mut engine, oracle) = engine_2d(300, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let preds = vec![
            Predicate::cmp(1, ComparisonOp::Gt, 100),
            Predicate::cmp(1, ComparisonOp::Lt, 900),
            Predicate::cmp(1, ComparisonOp::Ge, 200),
            Predicate::cmp(1, ComparisonOp::Le, 800),
            Predicate::cmp(0, ComparisonOp::Gt, 50),
            Predicate::cmp(0, ComparisonOp::Lt, 950),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    fn select_conjunction_same_direction_pair() {
        // Two same-direction comparisons on one attribute are still a valid
        // conjunction (not a range) and must evaluate correctly.
        let (mut engine, oracle) = engine_2d(400, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let preds = vec![
            Predicate::cmp(0, ComparisonOp::Lt, 700),
            Predicate::cmp(0, ComparisonOp::Lt, 300),
            Predicate::cmp(1, ComparisonOp::Gt, 100),
            Predicate::cmp(1, ComparisonOp::Gt, 400),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    #[should_panic(expected = "not initialized")]
    fn uninitialized_attr_panics() {
        let (mut engine, oracle) = engine_2d(100, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let p = Predicate::cmp(7, ComparisonOp::Lt, 5);
        let _ = engine.select(&oracle, &p, &mut rng);
    }
}
