//! The data owner (DO).
//!
//! Holds the master key, encrypts tables before upload, issues trapdoors for
//! queries, and provisions the trusted machine. Per the paper, the data
//! owner is **never** involved in building or using PRKB — this type's API
//! surface is exactly the owner's role in a PRKB-less EDBMS.

use crate::encrypted::EncryptedTable;
use crate::error::EdbmsError;
use crate::predicate::Predicate;
use crate::schema::AttrId;
use crate::table::PlainTable;
use crate::trapdoor::{EncryptedPredicate, PredicateKind};
use crate::trusted::{TmConfig, TrustedMachine};
use prkb_crypto::{CipherSuite, KeyPurpose, MasterKey, ValueCipher};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// The data owner: key custody, encryption, trapdoor generation.
pub struct DataOwner {
    master: MasterKey,
    suite: CipherSuite,
    next_trapdoor_id: AtomicU64,
}

impl DataOwner {
    /// Creates an owner with an explicit master key (ChaCha20 suite).
    pub fn new(master: MasterKey) -> Self {
        DataOwner {
            master,
            suite: CipherSuite::default(),
            next_trapdoor_id: AtomicU64::new(0),
        }
    }

    /// Switches the cell-cipher suite (builder style). All tables and
    /// trapdoors issued by this owner — and the trusted machines it
    /// provisions — use the chosen suite.
    pub fn with_cipher_suite(mut self, suite: CipherSuite) -> Self {
        self.suite = suite;
        self
    }

    /// Creates an owner with a master key derived from `seed`
    /// (reproducible experiments).
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(MasterKey::generate(&mut rng))
    }

    /// Encrypts a plaintext table for upload to the service provider.
    pub fn encrypt_table<R: RngCore>(&self, plain: &PlainTable, rng: &mut R) -> EncryptedTable {
        let schema = plain.schema().clone();
        let n = plain.len();
        let mut enc = EncryptedTable::with_capacity(schema.clone(), n);
        enc.bulk_load(|columns| {
            for (attr, col) in columns.iter_mut().enumerate() {
                let cipher = self.value_cipher(schema.table(), attr as AttrId);
                // Infallible by construction: `columns` is sized from the
                // same schema `plain` carries, so every index resolves.
                let values = plain
                    .column(attr as AttrId)
                    .expect("column count matches schema");
                let buf = col.raw_mut();
                for &v in values {
                    cipher.encrypt_into(rng, v, buf);
                }
            }
            n
        });
        enc
    }

    /// Encrypts a single row (for INSERT statements). Returns one
    /// fixed-width ciphertext cell per attribute, in schema order.
    pub fn encrypt_row<R: RngCore>(&self, table: &str, row: &[u64], rng: &mut R) -> Vec<Vec<u8>> {
        row.iter()
            .enumerate()
            .map(|(attr, &v)| {
                let cipher = self.value_cipher(table, attr as AttrId);
                let mut buf = Vec::new();
                cipher.encrypt_into(rng, v, &mut buf);
                buf
            })
            .collect()
    }

    /// Issues a trapdoor for `pred` against `table`.
    ///
    /// # Errors
    /// Returns [`EdbmsError::EmptyRange`] for a BETWEEN with `lo > hi`.
    pub fn trapdoor<R: RngCore>(
        &self,
        table: &str,
        pred: &Predicate,
        rng: &mut R,
    ) -> Result<EncryptedPredicate, EdbmsError> {
        let attr = pred.attr();
        let cipher = self.trapdoor_cipher(table, attr);
        let (kind, words) = match *pred {
            Predicate::Comparison { op, bound, .. } => {
                (PredicateKind::Comparison, [op.code(), bound])
            }
            Predicate::Between { lo, hi, .. } => {
                if lo > hi {
                    return Err(EdbmsError::EmptyRange { lo, hi });
                }
                (PredicateKind::Between, [lo, hi])
            }
        };
        let mut payload = Vec::new();
        for w in words {
            cipher.encrypt_into(rng, w, &mut payload);
        }
        let id = self.next_trapdoor_id.fetch_add(1, Ordering::Relaxed);
        Ok(EncryptedPredicate::assemble(
            id,
            table.to_string(),
            attr,
            kind,
            payload,
        ))
    }

    /// Provisions a trusted machine sharing this owner's keys (the paper's
    /// deployment: DO installs its key in the enclave at SP's site).
    pub fn trusted_machine(&self, cfg: TmConfig) -> TrustedMachine {
        TrustedMachine::new(
            self.master.clone(),
            TmConfig {
                suite: self.suite,
                ..cfg
            },
        )
    }

    /// Derives the searchable-encryption key pair for (`table`, `attr`) —
    /// consumed by index structures (e.g. Logarithmic-SRC-i) that the
    /// trusted machine builds on the owner's behalf.
    pub fn search_keys(&self, table: &str, attr: AttrId) -> ([u8; 32], [u8; 32]) {
        (
            *self
                .master
                .derive(KeyPurpose::SearchToken, table, attr)
                .as_bytes(),
            *self
                .master
                .derive(KeyPurpose::SearchPayload, table, attr)
                .as_bytes(),
        )
    }

    fn value_cipher(&self, table: &str, attr: AttrId) -> ValueCipher {
        ValueCipher::with_suite(
            self.master.derive(KeyPurpose::ValueEncryption, table, attr),
            self.suite,
        )
    }

    fn trapdoor_cipher(&self, table: &str, attr: AttrId) -> ValueCipher {
        ValueCipher::with_suite(
            self.master
                .derive(KeyPurpose::TrapdoorEncryption, table, attr),
            self.suite,
        )
    }
}

impl std::fmt::Debug for DataOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataOwner").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ComparisonOp;
    use crate::schema::Schema;

    #[test]
    fn encrypt_table_roundtrips_through_tm() {
        let owner = DataOwner::with_seed(42);
        let mut rng = StdRng::seed_from_u64(0);
        let mut plain = PlainTable::new(Schema::new("t", &["x", "y"]));
        plain.push_row(&[10, 100]).unwrap();
        plain.push_row(&[20, 200]).unwrap();
        let enc = owner.encrypt_table(&plain, &mut rng);
        assert_eq!(enc.len(), 2);
        let tm = owner.trusted_machine(TmConfig::default());
        assert_eq!(
            tm.decrypt_cell("t", 0, enc.cell(0, 0).unwrap()).unwrap(),
            10
        );
        assert_eq!(
            tm.decrypt_cell("t", 1, enc.cell(1, 1).unwrap()).unwrap(),
            200
        );
    }

    #[test]
    fn encrypt_row_matches_table_encryption_keys() {
        let owner = DataOwner::with_seed(43);
        let mut rng = StdRng::seed_from_u64(0);
        let cells = owner.encrypt_row("t", &[7, 8], &mut rng);
        let tm = owner.trusted_machine(TmConfig::default());
        assert_eq!(tm.decrypt_cell("t", 0, &cells[0]).unwrap(), 7);
        assert_eq!(tm.decrypt_cell("t", 1, &cells[1]).unwrap(), 8);
    }

    #[test]
    fn trapdoor_ids_are_unique() {
        let owner = DataOwner::with_seed(44);
        let mut rng = StdRng::seed_from_u64(0);
        let p = Predicate::cmp(0, ComparisonOp::Lt, 5);
        let t1 = owner.trapdoor("t", &p, &mut rng).unwrap();
        let t2 = owner.trapdoor("t", &p, &mut rng).unwrap();
        assert_ne!(t1.id(), t2.id());
        // Randomized payload: identical predicates are unlinkable.
        assert_ne!(t1, t2);
    }

    #[test]
    fn aes_suite_end_to_end() {
        // Cipherbase fidelity: AES-128-CTR cells decrypt-and-compare inside
        // the TM exactly like the default suite.
        let owner = DataOwner::with_seed(46).with_cipher_suite(CipherSuite::Aes128Ctr);
        let mut rng = StdRng::seed_from_u64(0);
        let plain = PlainTable::single_column("t", "x", vec![5, 10, 15]);
        let enc = owner.encrypt_table(&plain, &mut rng);
        let tm = owner.trusted_machine(TmConfig::default());
        let p = owner
            .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Lt, 12), &mut rng)
            .unwrap();
        assert!(tm.qpf(&p, enc.cell(0, 0).unwrap()).unwrap());
        assert!(!tm.qpf(&p, enc.cell(0, 2).unwrap()).unwrap());

        // A ChaCha20 TM provisioned from a same-key owner must fail closed
        // on AES cells (suite-binding tag).
        let chacha_owner = DataOwner::with_seed(46);
        let wrong_tm = chacha_owner.trusted_machine(TmConfig::default());
        assert!(wrong_tm.qpf(&p, enc.cell(0, 0).unwrap()).is_err());
    }

    #[test]
    fn empty_between_rejected() {
        let owner = DataOwner::with_seed(45);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            owner.trapdoor("t", &Predicate::between(0, 9, 3), &mut rng),
            Err(EdbmsError::EmptyRange { .. })
        ));
    }
}
