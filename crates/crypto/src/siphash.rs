//! SipHash-2-4 (Aumasson & Bernstein), implemented from the reference
//! description. Used as the short-output keyed PRF for hot paths (bucket
//! labels in the searchable-encryption substrate) where a full HMAC-SHA256
//! would dominate the cost being measured.

/// 128-bit SipHash key.
pub type SipKey = [u8; 16];

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under `key`, returning a 64-bit tag.
pub fn siphash24(key: &SipKey, data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8-byte slice"));
    let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8-byte slice"));

    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the message length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, b) in rem.iter().enumerate() {
        last |= (*b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);

    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Convenience: SipHash of a `u64` message (little-endian encoded).
pub fn siphash24_u64(key: &SipKey, value: u64) -> u64 {
    siphash24(key, &value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference output vectors from the SipHash reference implementation
    /// (`vectors_sip64` in the authors' C code): key = 00..0f, message =
    /// the first `i` bytes of 00,01,02,...
    const VECTORS: [[u8; 8]; 16] = [
        [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
        [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
        [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
        [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
        [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf],
        [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18],
        [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb],
        [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab],
        [0x62, 0x24, 0x93, 0x9a, 0x79, 0xf5, 0xf5, 0x93],
        [0xb0, 0xe4, 0xa9, 0x0b, 0xdf, 0x82, 0x00, 0x9e],
        [0xf3, 0xb9, 0xdd, 0x94, 0xc5, 0xbb, 0x5d, 0x7a],
        [0xa7, 0xad, 0x6b, 0x22, 0x46, 0x2f, 0xb3, 0xf4],
        [0xfb, 0xe5, 0x0e, 0x86, 0xbc, 0x8f, 0x1e, 0x75],
        [0x90, 0x3d, 0x84, 0xc0, 0x27, 0x56, 0xea, 0x14],
        [0xee, 0xf2, 0x7a, 0x8e, 0x90, 0xca, 0x23, 0xf7],
        [0xe5, 0x45, 0xbe, 0x49, 0x61, 0xca, 0x29, 0xa1],
    ];

    #[test]
    fn reference_vectors() {
        let mut key = [0u8; 16];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, expected) in VECTORS.iter().enumerate() {
            let got = siphash24(&key, &msg[..len]);
            assert_eq!(
                got.to_le_bytes(),
                *expected,
                "mismatch at message length {len}"
            );
        }
    }

    #[test]
    fn distinct_keys_distinct_outputs() {
        let k1 = [1u8; 16];
        let k2 = [2u8; 16];
        assert_ne!(siphash24_u64(&k1, 42), siphash24_u64(&k2, 42));
    }

    #[test]
    fn matches_std_hasher_semantics_for_various_lengths() {
        // Internal consistency: chunk boundary handling at 7/8/9 bytes.
        let key = [0xabu8; 16];
        let m7 = siphash24(&key, &[1, 2, 3, 4, 5, 6, 7]);
        let m8 = siphash24(&key, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let m9 = siphash24(&key, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(m7, m8);
        assert_ne!(m8, m9);
        assert_ne!(m7, m9);
    }
}
