//! Microbenchmark substantiating the paper's premise (§3.2): a QPF
//! evaluation (decrypt inside the trusted machine + compare) is far more
//! expensive than a plain comparison — which is why saving QPF uses saves
//! query time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prkb_bench::harness::EncSetup;
use prkb_edbms::{ComparisonOp, TmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_qpf(c: &mut Criterion) {
    let setup = EncSetup::new("qpf", vec![(0..10_000u64).collect()], 1);
    let mut rng = StdRng::seed_from_u64(2);
    let pred = setup.cmp_trapdoor(0, ComparisonOp::Lt, 5_000, &mut rng);
    let cell = setup.table.cell(0, 1234).expect("cell");

    let mut g = c.benchmark_group("qpf_premise");
    g.bench_function("plain_comparison", |b| {
        let x = black_box(1234u64);
        let y = black_box(5000u64);
        b.iter(|| black_box(x < y))
    });
    g.bench_function("qpf_decrypt_and_compare", |b| {
        b.iter(|| setup.tm.qpf(black_box(&pred), black_box(cell)).expect("valid"))
    });
    // An enclave with a work factor (emulating round-trip latency).
    let slow_tm = setup.owner.trusted_machine(TmConfig { work_factor: 16, ..TmConfig::default() });
    g.bench_function("qpf_with_enclave_work_factor_16", |b| {
        b.iter(|| slow_tm.qpf(black_box(&pred), black_box(cell)).expect("valid"))
    });
    g.finish();
}

criterion_group!(benches, bench_qpf);
criterion_main!(benches);
