//! Bootstrapping PRKB (paper §8.2.6): "if DO wants to avoid the poor
//! performance of the EDBMS using PRKB in the beginning, DO can arbitrarily
//! generate queries (as few as 50) to help SP build an initial PRKB."
//!
//! Compares three strategies for the first real query's cost:
//! cold (no warm-up), random warm-up cuts, and evenly spaced warm-up cuts.
//!
//! Run with: `cargo run --example warmup_strategies --release`

use prkb::core::{EngineConfig, PrkbEngine};
use prkb::datagen::synthetic;
use prkb::edbms::{
    ComparisonOp, DataOwner, EncryptedTable, PlainTable, Predicate, SelectionOracle, SpOracle,
    TmConfig, TrustedMachine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const DOMAIN: u64 = 30_000_000;

fn pipeline(seed: u64) -> (DataOwner, EncryptedTable, TrustedMachine) {
    let mut rng = StdRng::seed_from_u64(seed);
    let col = synthetic::uniform_column(N, 11);
    let plain = PlainTable::single_column("t", "x", col);
    let owner = DataOwner::with_seed(seed);
    let table = owner.encrypt_table(&plain, &mut rng);
    let tm = owner.trusted_machine(TmConfig::default());
    (owner, table, tm)
}

/// Issues `cuts` warm-up comparison queries, then measures 10 real queries.
fn run_strategy(name: &str, cuts: &[u64], seed: u64) {
    let (owner, table, tm) = pipeline(seed);
    let oracle = SpOracle::new(&table, &tm);
    let mut engine: PrkbEngine<_> = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, N);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);

    let warm_before = oracle.qpf_uses();
    for &c in cuts {
        let p = owner
            .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Lt, c), &mut rng)
            .expect("valid predicate");
        engine.select(&oracle, &p, &mut rng);
    }
    let warm_cost = oracle.qpf_uses().saturating_sub(warm_before);

    let mut real_cost = 0u64;
    for _ in 0..10 {
        let lo = rng.gen_range(0..DOMAIN - DOMAIN / 100);
        let p = owner
            .trapdoor("t", &Predicate::between(0, lo, lo + DOMAIN / 100), &mut rng)
            .expect("valid predicate");
        let sel = engine.select(&oracle, &p, &mut rng);
        real_cost += sel.stats.qpf_uses;
    }
    println!(
        "{name:<24} warm-up: {:>9} QPF  |  10 real queries: {:>8} QPF  (k = {})",
        warm_cost,
        real_cost,
        engine.knowledge(0).map_or(0, |k| k.k())
    );
}

fn main() {
    println!("warm-up strategies on {N} tuples, domain [1, 30M]\n");

    run_strategy("cold (no warm-up)", &[], 1);

    let mut rng = StdRng::seed_from_u64(5);
    let random_cuts: Vec<u64> = (0..50).map(|_| rng.gen_range(1..DOMAIN)).collect();
    run_strategy("50 random cuts", &random_cuts, 1);

    let even_cuts: Vec<u64> = (1..=50).map(|i| i * DOMAIN / 51).collect();
    run_strategy("50 evenly spaced cuts", &even_cuts, 1);

    let even_cuts_200: Vec<u64> = (1..=200).map(|i| i * DOMAIN / 201).collect();
    run_strategy("200 evenly spaced cuts", &even_cuts_200, 1);

    println!(
        "\ntakeaway: the warm-up itself pays the big scans once; evenly spaced\n\
         cuts give the most uniform partitions and the cheapest steady state."
    );
}
