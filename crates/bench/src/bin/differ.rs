//! `differ` — differential stress harness.
//!
//! Runs endless random workloads (mixed operators, BETWEENs,
//! multi-dimensional rectangles, inserts, deletions) on the real encrypted
//! pipeline and cross-checks three executors on every query:
//! PRKB engine vs index-less Baseline vs plaintext ground truth.
//! Exits non-zero on the first divergence, printing a reproducer seed.
//!
//! ```text
//! cargo run -p prkb-bench --bin differ --release -- [rounds] [seed]
//! ```

use prkb_bench::harness::EncSetup;
use prkb_core::{EngineConfig, PrkbEngine};
use prkb_datagen::synthetic;
use prkb_edbms::select::conjunctive_scan;
use prkb_edbms::{ComparisonOp, EncryptedPredicate, Predicate, SpOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: u64 = 1_000_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_secs()
    });
    eprintln!("differ: {rounds} rounds, seed {seed} (pass the seed to reproduce)");

    let mut rng = StdRng::seed_from_u64(seed);
    let n = 3_000usize;
    let d = 2usize;
    let mut cols: Vec<Vec<u64>> = (0..d)
        .map(|a| {
            synthetic::column_from(
                &prkb_datagen::Distribution::Uniform { lo: 0, hi: DOMAIN },
                n,
                seed ^ a as u64,
            )
        })
        .collect();
    let mut setup = EncSetup::new("differ", cols.clone(), seed);
    let mut live: Vec<bool> = vec![true; n];

    let mut engine: PrkbEngine<EncryptedPredicate> = PrkbEngine::new(EngineConfig::default());
    for a in 0..d {
        engine.init_attr(a as u32, n);
    }

    let mut checked = 0usize;
    for round in 0..rounds {
        match rng.gen_range(0..10) {
            // Insert (20%).
            0 | 1 => {
                let row: Vec<u64> = (0..d).map(|_| rng.gen_range(0..=DOMAIN)).collect();
                let cells = setup.owner.encrypt_row("differ", &row, &mut rng);
                let refs: Vec<&[u8]> = cells.iter().map(Vec::as_slice).collect();
                let t = setup.table.push_encrypted_row(&refs).expect("arity");
                for (a, v) in row.iter().enumerate() {
                    cols[a].push(*v);
                }
                live.push(true);
                let oracle = SpOracle::new(&setup.table, &setup.tm);
                engine.insert(&oracle, t);
            }
            // Delete (10%).
            2 => {
                let alive: Vec<u32> = (0..live.len() as u32)
                    .filter(|&t| live[t as usize])
                    .collect();
                if alive.len() > 10 {
                    let victim = alive[rng.gen_range(0..alive.len())];
                    setup.table.delete(victim).expect("live tuple");
                    live[victim as usize] = false;
                    engine.delete(victim);
                }
            }
            // Random conjunction (70%).
            _ => {
                let n_preds = rng.gen_range(1..=4);
                let preds: Vec<Predicate> = (0..n_preds)
                    .map(|_| {
                        let attr = rng.gen_range(0..d as u32);
                        if rng.gen_bool(0.25) {
                            let lo = rng.gen_range(0..DOMAIN);
                            Predicate::between(attr, lo, (lo + rng.gen_range(0..DOMAIN / 4)).min(DOMAIN))
                        } else {
                            let op = ComparisonOp::ALL[rng.gen_range(0..4)];
                            Predicate::cmp(attr, op, rng.gen_range(0..=DOMAIN))
                        }
                    })
                    .collect();
                let trapdoors: Vec<EncryptedPredicate> = preds
                    .iter()
                    .map(|p| setup.owner.trapdoor("differ", p, &mut rng).expect("valid"))
                    .collect();

                let oracle = SpOracle::new(&setup.table, &setup.tm);
                let mut got = engine.select_conjunction(&oracle, &trapdoors, &mut rng);
                got.tuples.sort_unstable();

                let mut baseline = conjunctive_scan(&oracle, &trapdoors);
                baseline.sort_unstable();

                let expected: Vec<u32> = (0..live.len() as u32)
                    .filter(|&t| {
                        live[t as usize]
                            && preds.iter().all(|p| p.eval(cols[p.attr() as usize][t as usize]))
                    })
                    .collect();

                if got.tuples != expected || baseline != expected {
                    eprintln!("DIVERGENCE at round {round} (seed {seed})");
                    eprintln!("predicates: {preds:?}");
                    eprintln!(
                        "engine: {} tuples, baseline: {}, expected: {}",
                        got.tuples.len(),
                        baseline.len(),
                        expected.len()
                    );
                    std::process::exit(1);
                }
                checked += 1;
            }
        }
        if (round + 1) % 50 == 0 {
            eprintln!("round {}/{rounds}: {checked} conjunctions verified, k = {:?}",
                round + 1,
                (0..d as u32)
                    .map(|a| engine.knowledge(a).map_or(0, |k| k.k()))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!("differ: OK — {checked} conjunctions verified across {rounds} rounds (seed {seed})");
}
