//! **Table 2** — Recovered portion of ordering information (RPOI, %) on
//! four real-world victim attributes, varying the number of queries the
//! attacker observes (paper §8.1).
//!
//! The real datasets are simulated per DESIGN.md §4 (same row counts, same
//! gap structure). Paper reference values are printed alongside ours.

use crate::harness::Report;
use crate::scale::Scale;
use prkb_analysis::rpoi_for_queries;
use prkb_datagen::realsim;

/// Paper's Table 2, for side-by-side display.
const PAPER: [(&str, usize, [f64; 5]); 4] = [
    ("Hospital", 2_426_516, [0.007, 0.020, 0.115, 0.605, 2.846]),
    ("Labor", 6_156_470, [0.042, 0.117, 0.484, 1.673, 5.807]),
    ("Latitude", 1_122_932, [0.008, 0.025, 0.212, 1.650, 11.167]),
    ("Longitude", 1_122_932, [0.011, 0.038, 0.331, 2.440, 13.592]),
];

const CHECKPOINTS: [usize; 5] = [250, 1_000, 10_000, 100_000, 1_000_000];

/// Runs the Table 2 experiment.
pub fn run(scale: Scale) -> String {
    let mut report = Report::new(&format!("Table 2: RPOI (%) — scale: {}", scale.tag()));
    let checkpoints: Vec<usize> = match scale {
        Scale::Ci => CHECKPOINTS[..3].to_vec(),
        _ => CHECKPOINTS.to_vec(),
    };

    let mut header = vec!["victim".to_string(), "rows".to_string()];
    header.extend(checkpoints.iter().map(|c| format!("q={c}")));
    header.push("(source)".to_string());
    report.row(&header);

    for (name, paper_rows, paper_vals) in PAPER {
        let rows = match scale {
            Scale::Paper => paper_rows,
            Scale::Default => paper_rows, // cheap enough to run full-size
            Scale::Ci => paper_rows / 100,
        };
        let (values, domain): (Vec<u64>, (u64, u64)) = match name {
            "Hospital" => (realsim::hospital_charges(rows, 42), (2_500, 3_000_000_000)),
            "Labor" => (realsim::labor_salaries(rows, 42), (15_000, 5_000_000)),
            "Latitude" => (
                realsim::us_buildings(rows, 42).0,
                (0, 25 * realsim::COORD_SCALE),
            ),
            _ => (
                realsim::us_buildings(rows, 42).1,
                (0, 58 * realsim::COORD_SCALE),
            ),
        };

        let curve = rpoi_for_queries(&values, domain, &checkpoints, 7);
        let mut cells = vec![name.to_string(), format!("{rows}")];
        cells.extend(
            checkpoints
                .iter()
                .map(|&c| format!("{:.3}", curve.percent_at(c).unwrap_or(f64::NAN))),
        );
        cells.push("measured".to_string());
        report.row(&cells);

        let mut paper_cells = vec![String::new(), String::new()];
        paper_cells.extend(
            paper_vals
                .iter()
                .take(checkpoints.len())
                .map(|v| format!("{v:.3}")),
        );
        paper_cells.push("paper".to_string());
        report.row(&paper_cells);
    }
    report.line("shape check: RPOI grows with queries at decreasing speed and stays");
    report.line("far below 100% for large-domain attributes (paper §8.1 conclusion).");
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_ci_scale() {
        let out = run(Scale::Ci);
        assert!(out.contains("Hospital"));
        assert!(out.contains("Longitude"));
        assert!(out.contains("measured"));
    }
}
