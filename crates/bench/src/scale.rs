//! Experiment scaling.
//!
//! The paper's testbed ran 10–20M-tuple datasets; this box may not. Every
//! experiment sizes itself through [`Scale`], selected by the `PRKB_SCALE`
//! environment variable:
//!
//! * `ci` — seconds-long smoke sizes;
//! * `default` — laptop-friendly (≈ 1/10 of the paper, minutes);
//! * `paper` — the paper's sizes (needs RAM and patience).

use std::env;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes for CI.
    Ci,
    /// ≈ 1/10 of the paper's sizes (default).
    Default,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Reads `PRKB_SCALE` (`ci` / `default` / `paper`), defaulting to
    /// [`Scale::Default`]; unknown values fall back to the default.
    pub fn from_env() -> Self {
        match env::var("PRKB_SCALE").as_deref() {
            Ok("ci") => Scale::Ci,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Scales a paper-sized tuple count.
    pub fn tuples(self, paper_n: usize) -> usize {
        match self {
            Scale::Ci => (paper_n / 200).max(2_000),
            Scale::Default => (paper_n / 10).max(10_000),
            Scale::Paper => paper_n,
        }
    }

    /// Scales a query count (kept closer to the paper — queries are cheap
    /// compared to data).
    pub fn queries(self, paper_q: usize) -> usize {
        match self {
            Scale::Ci => (paper_q / 10).max(20),
            _ => paper_q,
        }
    }

    /// Human-readable tag for report headers.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Default => "default (≈1/10 paper)",
            Scale::Paper => "paper",
        }
    }

    /// Machine-readable slug for trajectory files (`BENCH_<exp>.json`).
    pub fn slug(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rules() {
        assert_eq!(Scale::Paper.tuples(10_000_000), 10_000_000);
        assert_eq!(Scale::Default.tuples(10_000_000), 1_000_000);
        assert_eq!(Scale::Ci.tuples(10_000_000), 50_000);
        assert_eq!(Scale::Default.tuples(1_000), 10_000); // floor
        assert_eq!(Scale::Paper.queries(600), 600);
        assert_eq!(Scale::Ci.queries(600), 60);
    }
}
