//! Security audit (paper §3.3 / §8.1): how much ordering information does a
//! compromised service provider recover from watching selection results —
//! and why large domains make the EDBMS model practical.
//!
//! Run with: `cargo run --example security_audit --release`

use prkb::analysis::{ope_rpoi, rpoi_for_queries};
use prkb::datagen::realsim;

fn main() {
    let checkpoints = [250usize, 1_000, 10_000, 100_000];

    println!("attacker model: compromised SP observes every selection result");
    println!("metric: RPOI = recovered partial-order chain / total order length\n");

    let victims: [(&str, Vec<u64>, (u64, u64)); 3] = [
        (
            "hospital charges",
            realsim::hospital_charges(300_000, 1),
            (2_500, 3_000_000_000),
        ),
        (
            "salaries",
            realsim::labor_salaries(300_000, 1),
            (15_000, 5_000_000),
        ),
        (
            "latitude",
            realsim::us_buildings(300_000, 1).0,
            (0, 25 * realsim::COORD_SCALE),
        ),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "victim", "q=250", "q=1k", "q=10k", "q=100k"
    );
    for (name, values, domain) in &victims {
        let curve = rpoi_for_queries(values, *domain, &checkpoints, 9);
        println!(
            "{:<18} {:>9.3}% {:>9.3}% {:>9.3}% {:>9.3}%",
            name,
            curve.percent_at(250).unwrap_or(f64::NAN),
            curve.percent_at(1_000).unwrap_or(f64::NAN),
            curve.percent_at(10_000).unwrap_or(f64::NAN),
            curve.percent_at(100_000).unwrap_or(f64::NAN),
        );
    }

    // The cautionary counter-case: small domains leak fast.
    let birthdays: Vec<u64> = (0..300_000u64).map(|i| (i * 2_654_435_761) % 365).collect();
    let curve = rpoi_for_queries(&birthdays, (0, 364), &checkpoints, 9);
    println!(
        "{:<18} {:>9.3}% {:>9.3}% {:>9.3}% {:>9.3}%   <-- small domain!",
        "day-of-year",
        curve.percent_at(250).unwrap_or(f64::NAN),
        curve.percent_at(1_000).unwrap_or(f64::NAN),
        curve.percent_at(10_000).unwrap_or(f64::NAN),
        curve.percent_at(100_000).unwrap_or(f64::NAN),
    );

    // The OPE comparison: total order leaked before the first query.
    let salaries = realsim::labor_salaries(50_000, 1);
    println!(
        "{:<18} {:>9.3}% (with ZERO queries observed)   <-- CryptDB-style OPE",
        "salaries w/ OPE",
        ope_rpoi(&salaries, 0xC0FFEE) * 100.0
    );

    println!(
        "\nreading: for large-domain attributes the recovered order stays in\n\
         single-digit percent even after 100k observed queries, while an\n\
         OPE-based design (CryptDB-style) leaks 100% before the first query.\n\
         Small domains (day-of-year) approach full recovery quickly — do not\n\
         rely on result-revealing EDBMSs for those. PRKB adds nothing on top:\n\
         it only reorganizes what SP already saw."
    );
}
