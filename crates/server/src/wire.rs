//! `prkb-wire/v1` framing: length-prefixed, CRC32-guarded binary frames.
//!
//! The frame layout reuses the discipline proven by the durability layer's
//! write-ahead log ([`prkb_edbms::durability`]): every frame is
//!
//! ```text
//! len: u32 LE | crc: u32 LE | payload (len bytes)
//! ```
//!
//! where `crc` is CRC32 (IEEE, reflected — [`crc32`]) over `len || payload`,
//! so a damaged length field cannot silently misframe the stream. Unlike the
//! WAL there is no file header: a TCP connection is a fresh stream and every
//! frame is self-describing. Protocol versioning lives one layer up, in the
//! first payload byte (see [`crate::proto`]).
//!
//! Decoding is incremental and allocation-bounded: [`decode_frame`] works on
//! whatever bytes have arrived so far, answers "need more" without consuming
//! anything, and rejects a length field above the configured cap *before*
//! allocating — a lying length is a protocol error, not a 4 GiB allocation
//! request (mirroring `MAX_RECORD_LEN` in the WAL).

use prkb_edbms::durability::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of framing overhead per frame (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default cap on a single frame's payload (1 MiB). Configurable per server
/// via [`crate::ServerConfig::max_frame_len`].
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The length field exceeds the configured cap. Unrecoverable for the
    /// stream: the decoder cannot know where the next frame starts.
    TooLarge {
        /// The claimed payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The checksum failed: the frame (or its length field) is damaged.
    /// Unrecoverable for the stream.
    BadCrc,
    /// The peer closed the stream in the middle of a frame.
    Truncated,
    /// An I/O failure on the underlying stream.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "frame I/O failure: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes one frame around `payload`.
///
/// # Panics
/// Panics if `payload` exceeds `u32::MAX` bytes (callers cap far below).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload length fits u32");
    let len_le = len.to_le_bytes();
    let mut covered = Vec::with_capacity(4 + payload.len());
    covered.extend_from_slice(&len_le);
    covered.extend_from_slice(payload);
    let crc = crc32(&covered).to_le_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&len_le);
    frame.extend_from_slice(&crc);
    frame.extend_from_slice(payload);
    frame
}

/// Attempts to decode one frame from the front of `bytes`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a frame (read
/// more and retry), or `Ok(Some((payload, consumed)))` on success.
///
/// # Errors
/// [`FrameError::TooLarge`] and [`FrameError::BadCrc`] are stream-fatal:
/// framing is lost and the connection must be closed.
pub fn decode_frame(bytes: &[u8], max_len: u32) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if bytes.len() < total {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let mut covered = Vec::with_capacity(4 + len as usize);
    covered.extend_from_slice(&bytes[..4]);
    covered.extend_from_slice(&bytes[FRAME_HEADER_LEN..total]);
    if crc32(&covered) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(Some((bytes[FRAME_HEADER_LEN..total].to_vec(), total)))
}

/// Writes one frame to a blocking stream.
///
/// # Errors
/// Propagates the underlying I/O failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let frame = encode_frame(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Incremental frame reader over a blocking (possibly read-timeout-armed)
/// stream: buffers partial frames across poll ticks so a slow sender and a
/// periodic shutdown check coexist.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

/// One step of [`FrameReader::poll`].
#[derive(Debug)]
pub enum ReadStep {
    /// A complete frame; `bytes_consumed` includes the 8-byte header.
    Frame {
        /// The frame payload.
        payload: Vec<u8>,
        /// Wire bytes this frame occupied (header included).
        bytes_consumed: usize,
    },
    /// The read timed out with **no** partial frame buffered (idle tick —
    /// check deadlines/shutdown and poll again).
    Idle,
    /// The read timed out mid-frame (slow or stalled sender — check the
    /// connection deadline and poll again).
    Stalled,
    /// The peer closed the stream at a clean frame boundary.
    Closed,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads until one of: a full frame, a timeout tick, EOF, or an error.
    ///
    /// # Errors
    /// Stream-fatal framing damage ([`FrameError::BadCrc`],
    /// [`FrameError::TooLarge`]), EOF mid-frame ([`FrameError::Truncated`]),
    /// or I/O failure.
    pub fn poll<R: Read>(&mut self, r: &mut R, max_len: u32) -> Result<ReadStep, FrameError> {
        loop {
            if let Some((payload, consumed)) = decode_frame(&self.buf, max_len)? {
                self.buf.drain(..consumed);
                return Ok(ReadStep::Frame {
                    payload,
                    bytes_consumed: consumed,
                });
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadStep::Closed)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(if self.buf.is_empty() {
                        ReadStep::Idle
                    } else {
                        ReadStep::Stalled
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(b"hello wire");
        let (payload, consumed) = decode_frame(&frame, DEFAULT_MAX_FRAME_LEN)
            .expect("ok")
            .expect("complete");
        assert_eq!(payload, b"hello wire");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn empty_payload_is_legal() {
        let frame = encode_frame(b"");
        let (payload, consumed) = decode_frame(&frame, DEFAULT_MAX_FRAME_LEN)
            .expect("ok")
            .expect("complete");
        assert!(payload.is_empty());
        assert_eq!(consumed, FRAME_HEADER_LEN);
    }

    #[test]
    fn prefix_needs_more() {
        let frame = encode_frame(b"0123456789");
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut], DEFAULT_MAX_FRAME_LEN)
                    .expect("prefix is not an error")
                    .is_none(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_fails_crc() {
        let frame = encode_frame(b"sensitive");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            match decode_frame(&bad, DEFAULT_MAX_FRAME_LEN) {
                Err(FrameError::BadCrc) | Err(FrameError::TooLarge { .. }) | Ok(None) => {}
                other => panic!("flip at {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(b"x");
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::TooLarge { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn back_to_back_frames_consume_exactly() {
        let mut stream = encode_frame(b"first");
        stream.extend_from_slice(&encode_frame(b"second"));
        let (p1, c1) = decode_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .expect("ok")
            .expect("complete");
        assert_eq!(p1, b"first");
        let (p2, _) = decode_frame(&stream[c1..], DEFAULT_MAX_FRAME_LEN)
            .expect("ok")
            .expect("complete");
        assert_eq!(p2, b"second");
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut stream = encode_frame(b"alpha");
        stream.extend_from_slice(&encode_frame(b"beta"));
        // Feed the reader one byte at a time via a cursor chunked reader.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut r = OneByte(&stream, 0);
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        loop {
            match reader.poll(&mut r, DEFAULT_MAX_FRAME_LEN).expect("ok") {
                ReadStep::Frame { payload, .. } => seen.push(payload),
                ReadStep::Closed => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn eof_mid_frame_is_truncated() {
        let frame = encode_frame(b"doomed");
        let cut = &frame[..frame.len() - 2];
        let mut reader = FrameReader::new();
        let mut r = io::Cursor::new(cut.to_vec());
        let err = loop {
            match reader.poll(&mut r, DEFAULT_MAX_FRAME_LEN) {
                Ok(ReadStep::Frame { .. }) => panic!("frame cannot complete"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, FrameError::Truncated));
    }
}
