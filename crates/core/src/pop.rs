//! Partial order partitions (POP) — Definition 4.2 of the paper.
//!
//! A `Pop` is an ordered sequence of disjoint, non-empty partitions of tuple
//! ids with the invariant `P₁ ↦ P₂ ↦ … ↦ P_k`: all plain values in `Pᵢ` lie
//! strictly on one side of all plain values in `Pⱼ` (i ≠ j), with the global
//! direction (ascending vs descending) unknown to the service provider.
//!
//! Partitions carry **stable ids** ([`PartId`]) so that splits (which shift
//! ranks) do not invalidate references held elsewhere (separators, overflow
//! intervals). Rank ↔ id translation is O(1) both ways.

use prkb_edbms::TupleId;
use rand::Rng;

/// Stable identifier of a partition (survives rank shifts; never reused).
pub type PartId = u32;

/// Sentinel: tuple is not placed in any partition.
const NO_PART: PartId = PartId::MAX;
/// Sentinel rank for dead partitions.
const DEAD_RANK: u32 = u32::MAX;

/// The partial-order-partitions structure.
#[derive(Debug, Clone)]
pub struct Pop {
    /// rank → partition id.
    order: Vec<PartId>,
    /// partition id → current rank (DEAD_RANK when the partition is gone).
    rank: Vec<u32>,
    /// partition id → member tuple ids (unordered within the partition).
    members: Vec<Vec<TupleId>>,
    /// tuple slot → partition id (NO_PART when unplaced/deleted).
    locate: Vec<PartId>,
    /// Number of placed tuples.
    placed: usize,
}

impl Pop {
    /// `initPRKB`: all `n` tuples in one big partition (POP₁). With `n == 0`
    /// the structure starts with zero partitions.
    pub fn init(n: usize) -> Self {
        if n == 0 {
            return Pop {
                order: Vec::new(),
                rank: Vec::new(),
                members: Vec::new(),
                locate: Vec::new(),
                placed: 0,
            };
        }
        Pop {
            order: vec![0],
            rank: vec![0],
            members: vec![(0..n as TupleId).collect()],
            locate: vec![0; n],
            placed: n,
        }
    }

    /// Number of partitions `k`.
    pub fn k(&self) -> usize {
        self.order.len()
    }

    /// Number of placed tuples.
    pub fn placed(&self) -> usize {
        self.placed
    }

    /// Partition id at `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= k()`.
    pub fn part_at(&self, rank: usize) -> PartId {
        self.order[rank]
    }

    /// Current rank of partition `id`, or `None` if it no longer exists.
    pub fn rank_of(&self, id: PartId) -> Option<usize> {
        match self.rank.get(id as usize) {
            Some(&r) if r != DEAD_RANK => Some(r as usize),
            _ => None,
        }
    }

    /// Members of the partition at `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= k()`.
    pub fn members_at(&self, rank: usize) -> &[TupleId] {
        &self.members[self.order[rank] as usize]
    }

    /// Uniformly random member of the partition at `rank`
    /// (`Pᵢ.sample` in the paper).
    ///
    /// # Panics
    /// Panics if `rank >= k()`.
    pub fn sample_at<R: Rng>(&self, rank: usize, rng: &mut R) -> TupleId {
        let m = self.members_at(rank);
        m[rng.gen_range(0..m.len())]
    }

    /// Partition id containing tuple `t`, or `None` if unplaced.
    pub fn locate(&self, t: TupleId) -> Option<PartId> {
        match self.locate.get(t as usize) {
            Some(&p) if p != NO_PART => Some(p),
            _ => None,
        }
    }

    /// Rank of the partition containing tuple `t`, or `None` if unplaced.
    pub fn rank_of_tuple(&self, t: TupleId) -> Option<usize> {
        self.locate(t).and_then(|p| self.rank_of(p))
    }

    /// Ensures the locate array covers tuple id `t` (grows with the table).
    pub fn ensure_slot(&mut self, t: TupleId) {
        if t as usize >= self.locate.len() {
            self.locate.resize(t as usize + 1, NO_PART);
        }
    }

    /// Splits the partition at `rank` into two adjacent partitions.
    ///
    /// `first` and `second` become the members at `rank` and `rank + 1`
    /// respectively (caller decides the order per the update rule). Together
    /// they must be exactly the current members, and both must be non-empty.
    ///
    /// Returns `(id_first, id_second)`: the partition at `rank` keeps the old
    /// id (so the left endpoint of any range that included it stays valid);
    /// the right half gets a fresh id.
    ///
    /// # Panics
    /// Panics if the halves are empty or do not repartition the members.
    pub fn split_at(
        &mut self,
        rank: usize,
        first: Vec<TupleId>,
        second: Vec<TupleId>,
    ) -> (PartId, PartId) {
        assert!(
            !first.is_empty() && !second.is_empty(),
            "split halves must be non-empty"
        );
        let id = self.order[rank];
        debug_assert_eq!(
            first.len() + second.len(),
            self.members[id as usize].len(),
            "split must repartition the members"
        );
        let new_id = self.members.len() as PartId;
        // Left half keeps the old id.
        self.members[id as usize] = first;
        self.members.push(second);
        self.rank.push((rank + 1) as u32);
        self.order.insert(rank + 1, new_id);
        // Ranks after the insertion point shift right.
        for r in (rank + 2)..self.order.len() {
            self.rank[self.order[r] as usize] = r as u32;
        }
        // Relabel moved tuples.
        for &t in &self.members[new_id as usize] {
            self.locate[t as usize] = new_id;
        }
        (id, new_id)
    }

    /// Places an unplaced tuple into the partition at `rank`.
    ///
    /// # Panics
    /// Panics if `t` is already placed.
    pub fn place(&mut self, t: TupleId, rank: usize) {
        self.ensure_slot(t);
        assert_eq!(self.locate[t as usize], NO_PART, "tuple {t} already placed");
        let id = self.order[rank];
        self.members[id as usize].push(t);
        self.locate[t as usize] = id;
        self.placed += 1;
    }

    /// Rebuilds a POP from per-tuple ranks (snapshot restore).
    ///
    /// `ranks[t]` is the partition rank of tuple `t`, or `u32::MAX` for an
    /// unplaced slot. Every rank in `0..k` must be non-empty.
    ///
    /// # Errors
    /// Returns a description of the first structural violation found.
    pub fn from_ranks(ranks: &[u32], k: usize) -> Result<Self, &'static str> {
        let mut members: Vec<Vec<TupleId>> = vec![Vec::new(); k];
        let mut locate = vec![NO_PART; ranks.len()];
        let mut placed = 0usize;
        for (t, &r) in ranks.iter().enumerate() {
            if r == u32::MAX {
                continue;
            }
            let Some(m) = members.get_mut(r as usize) else {
                return Err("rank out of range");
            };
            m.push(t as TupleId);
            locate[t] = r;
            placed += 1;
        }
        if members.iter().any(Vec::is_empty) {
            return Err("empty partition in snapshot");
        }
        Ok(Pop {
            order: (0..k as PartId).collect(),
            rank: (0..k as u32).collect(),
            members,
            locate,
            placed,
        })
    }

    /// Per-tuple ranks in snapshot form (`u32::MAX` = unplaced).
    pub fn to_ranks(&self) -> Vec<u32> {
        self.locate
            .iter()
            .map(|&p| {
                if p == NO_PART {
                    u32::MAX
                } else {
                    self.rank[p as usize]
                }
            })
            .collect()
    }

    /// Seeds an empty POP with its first partition, holding just `t`
    /// (insertion into a table that started empty).
    ///
    /// # Panics
    /// Panics if the POP already has partitions — with existing partitions a
    /// new tuple must be routed by separators, never appended blindly.
    pub fn add_solo_partition(&mut self, t: TupleId) {
        assert_eq!(self.k(), 0, "solo partition only seeds an empty POP");
        self.ensure_slot(t);
        let id = self.members.len() as PartId;
        self.order.push(id);
        self.rank.push(0);
        self.members.push(vec![t]);
        self.locate[t as usize] = id;
        self.placed += 1;
    }

    /// Removes tuple `t`. If its partition becomes empty the partition is
    /// dropped and the former rank is returned in `RemoveOutcome::Emptied`.
    pub fn remove(&mut self, t: TupleId) -> RemoveOutcome {
        let Some(id) = self.locate(t) else {
            return RemoveOutcome::NotPlaced;
        };
        let members = &mut self.members[id as usize];
        let pos = members
            .iter()
            .position(|&x| x == t)
            .expect("locate and members agree");
        members.swap_remove(pos);
        self.locate[t as usize] = NO_PART;
        self.placed -= 1;
        if members.is_empty() {
            let r = self.rank[id as usize] as usize;
            self.order.remove(r);
            self.rank[id as usize] = DEAD_RANK;
            for rr in r..self.order.len() {
                self.rank[self.order[rr] as usize] = rr as u32;
            }
            RemoveOutcome::Emptied { rank: r }
        } else {
            RemoveOutcome::Removed
        }
    }

    /// Serialized storage footprint in bytes: the canonical representation
    /// is one partition id per tuple slot (4 bytes) plus the order list
    /// (4 bytes per partition) — the member lists are derivable and not
    /// counted, matching the paper's "partition information" accounting.
    pub fn storage_bytes(&self) -> usize {
        self.locate.len() * 4 + self.order.len() * 4
    }

    /// Validates all structural invariants (test/debug aid): partitions
    /// non-empty, disjoint, rank table consistent, locate consistent.
    ///
    /// # Panics
    /// Panics (with a description) on any violation. Untrusted input paths
    /// use the non-panicking [`validate`](Self::validate) instead.
    pub fn check_invariants(&self) {
        if let Err(what) = self.validate() {
            panic!("POP invariant violated: {what}");
        }
    }

    /// Non-panicking twin of [`check_invariants`](Self::check_invariants):
    /// reports the first violated invariant instead of asserting, so
    /// untrusted input (e.g. a snapshot read from disk) can be rejected
    /// gracefully.
    ///
    /// # Errors
    /// A short description of the first violated invariant.
    pub fn validate(&self) -> Result<(), &'static str> {
        let mut seen = std::collections::HashSet::new();
        for (r, &id) in self.order.iter().enumerate() {
            if self.rank.get(id as usize).copied() != Some(r as u32) {
                return Err("rank table broken");
            }
            let Some(m) = self.members.get(id as usize) else {
                return Err("order references unknown partition");
            };
            if m.is_empty() {
                return Err("empty partition");
            }
            for &t in m {
                if !seen.insert(t) {
                    return Err("tuple in two partitions");
                }
                if self.locate.get(t as usize).copied() != Some(id) {
                    return Err("locate table broken");
                }
            }
        }
        if seen.len() != self.placed {
            return Err("placed count broken");
        }
        for (t, &p) in self.locate.iter().enumerate() {
            if p != NO_PART && !seen.contains(&(t as TupleId)) {
                return Err("ghost placement");
            }
        }
        Ok(())
    }
}

/// Result of [`Pop::remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The tuple was not placed anywhere (overflow or already deleted).
    NotPlaced,
    /// Removed; the partition still has members.
    Removed,
    /// Removed and the partition at the given (former) rank became empty
    /// and was dropped.
    Emptied {
        /// Rank the emptied partition had before removal.
        rank: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_single_partition() {
        let pop = Pop::init(5);
        assert_eq!(pop.k(), 1);
        assert_eq!(pop.placed(), 5);
        assert_eq!(pop.members_at(0), &[0, 1, 2, 3, 4]);
        assert_eq!(pop.rank_of_tuple(3), Some(0));
        pop.check_invariants();
    }

    #[test]
    fn init_empty() {
        let pop = Pop::init(0);
        assert_eq!(pop.k(), 0);
        assert_eq!(pop.placed(), 0);
        pop.check_invariants();
    }

    #[test]
    fn split_preserves_order_and_ids() {
        let mut pop = Pop::init(6);
        let (left, right) = pop.split_at(0, vec![0, 1, 2], vec![3, 4, 5]);
        assert_eq!(pop.k(), 2);
        assert_eq!(pop.members_at(0), &[0, 1, 2]);
        assert_eq!(pop.members_at(1), &[3, 4, 5]);
        assert_eq!(pop.rank_of(left), Some(0));
        assert_eq!(pop.rank_of(right), Some(1));
        assert_eq!(pop.rank_of_tuple(4), Some(1));
        pop.check_invariants();

        // Split the middle; ranks shift.
        let (a, b) = pop.split_at(1, vec![4], vec![3, 5]);
        assert_eq!(pop.k(), 3);
        assert_eq!(pop.members_at(1), &[4]);
        assert_eq!(pop.members_at(2), &[3, 5]);
        assert_eq!(pop.rank_of(a), Some(1));
        assert_eq!(pop.rank_of(b), Some(2));
        pop.check_invariants();

        // Splitting rank 0 shifts everything after it.
        pop.split_at(0, vec![0], vec![1, 2]);
        assert_eq!(pop.k(), 4);
        assert_eq!(pop.members_at(0), &[0]);
        assert_eq!(pop.members_at(1), &[1, 2]);
        assert_eq!(pop.members_at(2), &[4]);
        assert_eq!(pop.members_at(3), &[3, 5]);
        pop.check_invariants();
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_rejects_empty_half() {
        let mut pop = Pop::init(3);
        pop.split_at(0, vec![], vec![0, 1, 2]);
    }

    #[test]
    fn sample_is_a_member() {
        let mut pop = Pop::init(10);
        pop.split_at(0, vec![0, 1, 2], (3..10).collect());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = pop.sample_at(0, &mut rng);
            assert!(s < 3);
            let s = pop.sample_at(1, &mut rng);
            assert!((3..10).contains(&s));
        }
    }

    #[test]
    fn remove_and_empty_partition() {
        let mut pop = Pop::init(4);
        pop.split_at(0, vec![0], vec![1, 2, 3]);
        assert_eq!(pop.remove(1), RemoveOutcome::Removed);
        assert_eq!(pop.remove(1), RemoveOutcome::NotPlaced);
        assert_eq!(pop.remove(0), RemoveOutcome::Emptied { rank: 0 });
        assert_eq!(pop.k(), 1);
        assert_eq!(pop.members_at(0), &[3, 2]); // swap_remove order
        assert_eq!(pop.placed(), 2);
        pop.check_invariants();
    }

    #[test]
    fn place_new_tuple() {
        let mut pop = Pop::init(3);
        pop.split_at(0, vec![0], vec![1, 2]);
        pop.place(7, 1);
        assert_eq!(pop.rank_of_tuple(7), Some(1));
        assert_eq!(pop.placed(), 4);
        pop.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_rejected() {
        let mut pop = Pop::init(3);
        pop.place(0, 0);
    }

    #[test]
    fn storage_accounting() {
        let pop = Pop::init(1000);
        assert_eq!(pop.storage_bytes(), 1000 * 4 + 4);
    }

    #[test]
    fn ranks_roundtrip() {
        let mut pop = Pop::init(6);
        pop.split_at(0, vec![0, 1, 2], vec![3, 4, 5]);
        pop.split_at(1, vec![4], vec![3, 5]);
        pop.remove(2);
        let ranks = pop.to_ranks();
        assert_eq!(ranks[2], u32::MAX, "removed tuple unplaced");
        let rebuilt = Pop::from_ranks(&ranks, pop.k()).expect("roundtrip");
        rebuilt.check_invariants();
        assert_eq!(rebuilt.k(), pop.k());
        for t in 0..6u32 {
            assert_eq!(rebuilt.rank_of_tuple(t), pop.rank_of_tuple(t), "tuple {t}");
        }
    }

    #[test]
    fn from_ranks_rejects_garbage() {
        assert!(Pop::from_ranks(&[0, 5], 2).is_err(), "rank out of range");
        assert!(Pop::from_ranks(&[0, 0], 2).is_err(), "empty partition");
        assert!(Pop::from_ranks(&[u32::MAX], 0).expect("empty ok").k() == 0);
    }

    #[test]
    fn remove_first_and_last_rank_partitions() {
        let mut pop = Pop::init(3);
        pop.split_at(0, vec![0], vec![1, 2]);
        pop.split_at(1, vec![1], vec![2]);
        assert_eq!(pop.remove(0), RemoveOutcome::Emptied { rank: 0 });
        assert_eq!(pop.k(), 2);
        assert_eq!(pop.rank_of_tuple(1), Some(0));
        assert_eq!(pop.remove(2), RemoveOutcome::Emptied { rank: 1 });
        assert_eq!(pop.k(), 1);
        pop.check_invariants();
    }
}
