//! Per-connection request loop.
//!
//! Each accepted socket is served by one worker thread: frames are read
//! incrementally (poll ticks double as shutdown/idle-deadline checks),
//! every frame payload decodes into one [`Request`], and exactly one
//! response frame is written back. Failure handling is two-tier,
//! mirroring the WAL's trust model:
//!
//! * **frame damage** (bad CRC, oversized length, truncation) destroys
//!   framing — the server sends a best-effort error frame and closes the
//!   connection;
//! * **payload damage** (unknown tag, truncated body, hostile counts) is
//!   contained to one request — the server answers with a structured error
//!   and keeps the connection alive.
//!
//! Hostile-but-well-framed input must never panic the worker: requests that
//! would trip engine programmer-error assertions (duplicate MD dimensions,
//! mismatched dimension attributes, out-of-range tuple ids) are rejected
//! here, before dispatch.
//!
//! The resilience header rides on every request (PR 7): a non-zero
//! `deadline_ms` becomes an absolute [`Instant`] budget threaded into the
//! backend (checkout waits and oracle batches both honour it — expiry
//! answers [`code::DEADLINE`] and leaves the KB untouched), and a non-zero
//! `request_id` consults the server-global [`DedupWindow`] so a retried
//! mutation replays its original response bytes instead of committing
//! twice. Writes are bounded by a per-stream write timeout: one stuck
//! reader costs a worker at most that long per frame, not forever.

use crate::admission::{DedupClaim, DedupWindow};
use crate::proto::{code, Request, Response};
use crate::scheduler::Backend;
use crate::wire::{write_frame, FrameReader, ReadStep};
use prkb_core::metrics::{self, Metric};
use prkb_core::snapshot::WireCodec;
use prkb_core::SpPredicate;
use prkb_edbms::{AttrId, SelectionOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, RwLock};
use std::time::{Duration, Instant};

/// State shared between the accept loop and every connection worker.
pub(crate) struct Shared<P: SpPredicate + WireCodec, O> {
    /// The engine behind its concurrency discipline.
    pub backend: Backend<P>,
    /// The shared oracle; `RwLock` so a deployment can upload rows (a
    /// `&mut` operation on test oracles) between queries.
    pub oracle: Arc<RwLock<O>>,
    /// Set once by a Shutdown request (or [`crate::ServerHandle`]): workers
    /// finish their in-flight request, then close.
    pub shutdown: AtomicBool,
    /// Frame payload cap for this server.
    pub max_frame_len: u32,
    /// Socket read timeout — the poll tick granularity.
    pub poll_tick: Duration,
    /// Close connections idle longer than this.
    pub idle_deadline: Duration,
    /// Per-frame write budget: a peer that stops reading costs a worker at
    /// most this long before the connection is dropped.
    pub write_timeout: Duration,
    /// Request-id → response memo for idempotent retries.
    pub dedup: DedupWindow,
    /// Served requests (every decoded frame counts, errors included).
    pub requests: AtomicU64,
    /// Wire bytes in + out.
    pub bytes: AtomicU64,
    /// Stream-fatal framing failures.
    pub frame_errors: AtomicU64,
    /// Connections shed with BUSY at the admission gate.
    pub busy_rejections: AtomicU64,
    /// Requests answered with [`code::DEADLINE`].
    pub deadline_timeouts: AtomicU64,
    /// Requests answered from the dedup window instead of re-executing.
    pub dedup_hits: AtomicU64,
    /// The listener's own address — connected-to once to wake the blocking
    /// accept loop when shutdown is triggered.
    pub wake_addr: std::net::SocketAddr,
}

impl<P: SpPredicate + WireCodec, O> Shared<P, O> {
    /// Flips the shutdown flag and pokes the accept loop awake so it can
    /// observe the flag immediately instead of on its next poll tick.
    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Err(e) = TcpStream::connect_timeout(&self.wake_addr, Duration::from_secs(1)) {
            // The poke is an accelerator, not a correctness requirement:
            // the accept loop re-checks the flag on every poll tick. Say
            // so once rather than failing silently.
            static WARNED: Once = Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "prkb-server: shutdown wake poke to {} failed ({e}); \
                     accept loop will notice on its next poll tick",
                    self.wake_addr
                );
            });
        }
    }
}

/// Serves one accepted connection to completion.
pub(crate) fn serve<P, O>(shared: &Shared<P, O>, mut stream: TcpStream)
where
    P: SpPredicate + WireCodec,
    O: SelectionOracle<Pred = P>,
{
    if stream.set_read_timeout(Some(shared.poll_tick)).is_err() {
        return;
    }
    if stream
        .set_write_timeout(Some(shared.write_timeout.max(Duration::from_millis(1))))
        .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new();
    let mut last_activity = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.poll(&mut stream, shared.max_frame_len) {
            Ok(ReadStep::Frame {
                payload,
                bytes_consumed,
            }) => {
                last_activity = Instant::now();
                shared
                    .bytes
                    .fetch_add(bytes_consumed as u64, Ordering::Relaxed);
                metrics::global().add(Metric::ServerBytes, bytes_consumed as u64);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                metrics::global().add(Metric::ServerRequests, 1);

                let (resp, close) = process(shared, &payload);
                if respond_bytes(shared, &mut stream, &resp).is_err() || close {
                    return;
                }
            }
            Ok(ReadStep::Idle) | Ok(ReadStep::Stalled) => {
                if last_activity.elapsed() >= shared.idle_deadline {
                    return;
                }
            }
            Ok(ReadStep::Closed) => return,
            Err(e) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                metrics::global().add(Metric::FrameErrors, 1);
                // Framing is lost: tell the peer why (best effort — the
                // stream may be dead) and close.
                let resp = Response::Error {
                    code: code::FRAME,
                    message: e.to_string(),
                };
                let _ = respond_bytes(shared, &mut stream, &resp.encode());
                let _ = stream.flush();
                return;
            }
        }
    }
}

fn respond_bytes<P: SpPredicate + WireCodec, O>(
    shared: &Shared<P, O>,
    stream: &mut TcpStream,
    payload: &[u8],
) -> std::io::Result<()> {
    let wire_len = (payload.len() + crate::wire::FRAME_HEADER_LEN) as u64;
    shared.bytes.fetch_add(wire_len, Ordering::Relaxed);
    metrics::global().add(Metric::ServerBytes, wire_len);
    write_frame(stream, payload)
}

/// Decodes one request payload, applies the resilience header (deadline
/// budget, idempotent-replay window), and dispatches. Returns the encoded
/// response payload and whether the connection must close afterwards.
fn process<P, O>(shared: &Shared<P, O>, payload: &[u8]) -> (Arc<Vec<u8>>, bool)
where
    P: SpPredicate + WireCodec,
    O: SelectionOracle<Pred = P>,
{
    let (hdr, req) = match Request::<P>::decode(payload) {
        Ok(decoded) => decoded,
        Err(e) => {
            let resp = Response::Error {
                code: e.wire_code(),
                message: e.to_string(),
            };
            return (Arc::new(resp.encode()), false);
        }
    };
    let deadline = (hdr.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(u64::from(hdr.deadline_ms)));

    // Only engine operations are tracked: Ping/Metrics/Shutdown have no
    // commit to protect and their responses are not worth memoizing.
    let tracked = hdr.request_id != 0
        && matches!(
            req,
            Request::Select { .. }
                | Request::Between { .. }
                | Request::SelectRangeMd { .. }
                | Request::Insert { .. }
                | Request::Delete { .. }
        );
    if !tracked {
        let (resp, close) = handle(shared, req, deadline);
        observe_deadline(shared, &resp);
        return (Arc::new(resp.encode()), close);
    }

    match shared.dedup.begin(hdr.request_id) {
        DedupClaim::Replay(bytes) => {
            shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
            metrics::global().add(Metric::DedupHits, 1);
            (bytes, false)
        }
        DedupClaim::Execute(claim) => {
            let (resp, close) = handle(shared, req, deadline);
            observe_deadline(shared, &resp);
            let bytes = Arc::new(resp.encode());
            // Memoize only committed outcomes. An error releases the id
            // (claim drops → abort) so the client's retry re-executes.
            if matches!(
                resp,
                Response::Selection { .. } | Response::Inserted { .. } | Response::Deleted { .. }
            ) {
                claim.complete(Arc::clone(&bytes));
            }
            (bytes, close)
        }
        // begin() returns Untracked only for rid 0, excluded above.
        DedupClaim::Untracked => unreachable!("tracked path requires request_id != 0"),
    }
}

fn observe_deadline<P: SpPredicate + WireCodec, O>(shared: &Shared<P, O>, resp: &Response) {
    if matches!(
        resp,
        Response::Error {
            code: code::DEADLINE,
            ..
        }
    ) {
        shared.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
        metrics::global().add(Metric::DeadlineTimeouts, 1);
    }
}

/// Dispatches one decoded request. Returns the response and whether the
/// connection must close afterwards.
fn handle<P, O>(
    shared: &Shared<P, O>,
    req: Request<P>,
    deadline: Option<Instant>,
) -> (Response, bool)
where
    P: SpPredicate + WireCodec,
    O: SelectionOracle<Pred = P>,
{
    match req {
        Request::Ping => (Response::Ok, false),
        Request::Select { seed, pred } | Request::Between { seed, pred } => {
            let oracle = read_oracle(&shared.oracle);
            let mut rng = StdRng::seed_from_u64(seed);
            match shared.backend.select(&*oracle, &pred, deadline, &mut rng) {
                Ok((sel, seq)) => (
                    Response::Selection {
                        seq,
                        tuples: sel.tuples,
                        stats: sel.stats,
                    },
                    false,
                ),
                Err(e) => (error_of(&e), false),
            }
        }
        Request::SelectRangeMd { seed, dims } => {
            if let Err(resp) = validate_dims(&dims) {
                return (resp, false);
            }
            let oracle = read_oracle(&shared.oracle);
            let mut rng = StdRng::seed_from_u64(seed);
            match shared
                .backend
                .select_range_md(&*oracle, &dims, deadline, &mut rng)
            {
                Ok((sel, seq)) => (
                    Response::Selection {
                        seq,
                        tuples: sel.tuples,
                        stats: sel.stats,
                    },
                    false,
                ),
                Err(e) => (error_of(&e), false),
            }
        }
        Request::Insert { tuple } => {
            let oracle = read_oracle(&shared.oracle);
            // An id beyond the oracle's slots has no uploaded row behind it;
            // routing it would be evaluating trapdoors against nothing.
            if tuple as usize >= oracle.n_slots() {
                return (
                    Response::Error {
                        code: code::MALFORMED,
                        message: format!("tuple {tuple} beyond table ({} slots)", oracle.n_slots()),
                    },
                    false,
                );
            }
            match shared.backend.insert(&*oracle, tuple, deadline) {
                Ok((outcomes, seq)) => (Response::Inserted { seq, outcomes }, false),
                Err(e) => (error_of(&e), false),
            }
        }
        Request::Delete { tuple } => match shared.backend.delete(tuple, deadline) {
            Ok(seq) => (Response::Deleted { seq }, false),
            Err(e) => (error_of(&e), false),
        },
        Request::MetricsSnapshot => (
            Response::Metrics {
                json: metrics::global().snapshot().to_json(),
            },
            false,
        ),
        Request::Shutdown => {
            // Flush every shard's pending group-commit batch before the
            // acknowledgement goes on the wire: once the client sees Ok,
            // the full commit history is on disk even if the process dies
            // right after. The server drains either way — a failed flush
            // is reported, not retried (the committer is poisoned; only a
            // reopen recovers it).
            let flush = shared.backend.flush_durable();
            shared.trigger_shutdown();
            match flush {
                Ok(()) => (Response::Ok, true),
                Err(e) => (error_of(&e), true),
            }
        }
    }
}

fn read_oracle<O>(oracle: &RwLock<O>) -> std::sync::RwLockReadGuard<'_, O> {
    match oracle.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn error_of(e: &crate::scheduler::ServeError) -> Response {
    Response::Error {
        code: e.wire_code(),
        message: e.to_string(),
    }
}

/// Rejects MD dimension lists the engine would treat as programmer error:
/// empty lists, mismatched attributes inside a dimension, and the same
/// attribute across two dimensions.
fn validate_dims<P: SpPredicate>(dims: &[[P; 2]]) -> Result<(), Response> {
    if dims.is_empty() {
        return Err(Response::Error {
            code: code::MALFORMED,
            message: "MD range query needs at least one dimension".into(),
        });
    }
    let mut seen: HashSet<AttrId> = HashSet::new();
    for pair in dims {
        if pair[0].attr() != pair[1].attr() {
            return Err(Response::Error {
                code: code::MALFORMED,
                message: format!(
                    "dimension trapdoors disagree on attribute ({} vs {})",
                    pair[0].attr(),
                    pair[1].attr()
                ),
            });
        }
        if !seen.insert(pair[0].attr()) {
            return Err(Response::Error {
                code: code::DUPLICATE_DIMENSION,
                message: format!("attribute {} listed in two dimensions", pair[0].attr()),
            });
        }
    }
    Ok(())
}
