//! Multi-dimensional range query processing (paper §6).
//!
//! A d-dimensional hyper-rectangle arrives as 2d comparison trapdoors (two
//! per dimension). `PRKB(MD)` runs `QFilter` for each trapdoor, classifies
//! every tuple per dimension through its partition rank, and then tests only tuples in
//! the *candidate region* — not provably out in any dimension — evaluating
//! only the trapdoors still unknown for them, with the paper's two
//! optimizations:
//!
//! * **early-stop inference** (§6.2): once an NS partition proves
//!   non-homogeneous, its pair partner's tuples are implied and cost no QPF;
//! * **per-tuple short-circuit**: a failing trapdoor ends that tuple.
//!
//! Updates: a partition may be only *partially* tested here (tuples pruned
//! by other dimensions are skipped), and a partial split is unsound. The
//! default policy refines only partitions whose members were all decided;
//! [`MdUpdatePolicy::CompleteSplits`] instead pays the missing QPF uses to
//! finish every discovered split (ablation).

pub(crate) mod exec;
pub(crate) mod zones;

use crate::knowledge::Knowledge;
use crate::selection::Selection;
use crate::traits::SpPredicate;
use prkb_edbms::{OracleError, SelectionOracle};
use rand::Rng;

/// What to do with partially-scanned NS partitions after an MD query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MdUpdatePolicy {
    /// Refine only fully-decided partitions (no extra QPF). Default.
    #[default]
    PartialOnly,
    /// Spend extra QPF to finish every discovered split (ablation mode).
    CompleteSplits,
    /// Never refine from MD queries (static PRKB).
    Frozen,
}

/// One dimension of a range query: the attribute's knowledge base plus its
/// two comparison trapdoors. The engine moves knowledge in and out by value.
#[derive(Debug)]
pub struct MdDim<P> {
    /// PRKB state of this attribute.
    pub knowledge: Knowledge<P>,
    /// The two comparison trapdoors of this dimension.
    pub preds: [P; 2],
}

/// Processes a d-dimensional range query with the PRKB(MD) algorithm.
///
/// Infallible wrapper over [`try_process_range_md`].
///
/// # Panics
/// Panics on oracle failure — fault-tolerant paths use
/// [`try_process_range_md`].
pub fn process_range_md<O, R>(
    dims: &mut [MdDim<O::Pred>],
    oracle: &O,
    rng: &mut R,
    policy: MdUpdatePolicy,
) -> Selection
where
    O: SelectionOracle,
    O::Pred: SpPredicate,
    R: Rng,
{
    match try_process_range_md(dims, oracle, rng, policy) {
        Ok(sel) => sel,
        Err(e) => panic!("oracle failure: {e}"),
    }
}

/// Processes a d-dimensional range query with the PRKB(MD) algorithm.
///
/// # Errors
/// Propagates the first oracle failure. **Abort-safe:** pending splits are
/// staged per dimension and committed only after every oracle evaluation of
/// the whole query (all dimensions) has succeeded, so on error every
/// dimension's `Knowledge` is byte-identical to its pre-query state.
pub fn try_process_range_md<O, R>(
    dims: &mut [MdDim<O::Pred>],
    oracle: &O,
    rng: &mut R,
    policy: MdUpdatePolicy,
) -> Result<Selection, OracleError>
where
    O: SelectionOracle,
    O::Pred: SpPredicate,
    R: Rng,
{
    exec::run(dims, oracle, rng, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sd::process_comparison;
    use prkb_edbms::testing::PlainOracle;
    use prkb_edbms::{ComparisonOp, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a d-dim oracle + warmed knowledge bases over random data.
    fn setup(
        n: usize,
        d: usize,
        warm_cuts: usize,
        seed: u64,
    ) -> (Vec<Knowledge<Predicate>>, PlainOracle) {
        let mut rng = StdRng::seed_from_u64(seed);
        let columns: Vec<Vec<u64>> = (0..d)
            .map(|_| (0..n).map(|_| rng.gen_range(0..10_000u64)).collect())
            .collect();
        let oracle = PlainOracle::from_columns(columns);
        let mut kbs: Vec<Knowledge<Predicate>> = (0..d).map(|_| Knowledge::init(n)).collect();
        for (a, kb) in kbs.iter_mut().enumerate() {
            for c in 0..warm_cuts {
                let bound = rng.gen_range(0..10_000u64);
                let p = Predicate::cmp(a as u32, ComparisonOp::Lt, bound);
                let _ = c;
                process_comparison(kb, &oracle, &p, &mut rng, true);
            }
        }
        oracle.reset_uses();
        (kbs, oracle)
    }

    fn range_preds(attr: u32, lo: u64, hi: u64) -> [Predicate; 2] {
        [
            Predicate::cmp(attr, ComparisonOp::Gt, lo),
            Predicate::cmp(attr, ComparisonOp::Lt, hi),
        ]
    }

    fn run_md(
        kbs: Vec<Knowledge<Predicate>>,
        oracle: &PlainOracle,
        ranges: &[(u64, u64)],
        policy: MdUpdatePolicy,
        seed: u64,
    ) -> (Vec<Knowledge<Predicate>>, Selection) {
        let mut dims: Vec<MdDim<Predicate>> = kbs
            .into_iter()
            .enumerate()
            .map(|(a, knowledge)| MdDim {
                knowledge,
                preds: range_preds(a as u32, ranges[a].0, ranges[a].1),
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = process_range_md(&mut dims, oracle, &mut rng, policy);
        (dims.into_iter().map(|d| d.knowledge).collect(), sel)
    }

    fn expected(oracle: &PlainOracle, ranges: &[(u64, u64)]) -> Vec<u32> {
        let preds: Vec<Predicate> = ranges
            .iter()
            .enumerate()
            .flat_map(|(a, &(lo, hi))| range_preds(a as u32, lo, hi))
            .collect();
        oracle.expected_conjunction(&preds)
    }

    #[test]
    fn md_2d_correctness_fresh() {
        let (kbs, oracle) = setup(2000, 2, 0, 1);
        let ranges = [(1000, 3000), (4000, 7000)];
        let (kbs, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::PartialOnly, 2);
        assert_eq!(sel.sorted(), expected(&oracle, &ranges));
        for kb in &kbs {
            kb.check_invariants();
        }
    }

    #[test]
    fn md_2d_correctness_warmed() {
        let (kbs, oracle) = setup(2000, 2, 20, 3);
        let ranges = [(1000, 3000), (4000, 7000)];
        let (kbs, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::PartialOnly, 4);
        assert_eq!(sel.sorted(), expected(&oracle, &ranges));
        for kb in &kbs {
            kb.check_invariants();
        }
    }

    #[test]
    fn md_3d_and_4d_correctness() {
        for d in [3usize, 4] {
            let (kbs, oracle) = setup(1500, d, 15, 5 + d as u64);
            let ranges: Vec<(u64, u64)> = (0..d as u64)
                .map(|i| (500 + i * 300, 5500 + i * 300))
                .collect();
            let (kbs, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::PartialOnly, 6);
            assert_eq!(sel.sorted(), expected(&oracle, &ranges), "d={d}");
            for kb in &kbs {
                kb.check_invariants();
            }
        }
    }

    #[test]
    fn md_is_cheaper_than_full_scan_when_warmed() {
        let (kbs, oracle) = setup(5000, 2, 40, 7);
        let ranges = [(2000, 2600), (4000, 4700)];
        oracle.reset_uses();
        let (_, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::PartialOnly, 8);
        assert_eq!(sel.sorted(), expected(&oracle, &ranges));
        // Baseline would spend up to 2dn = 20000; MD must be far below n.
        assert!(
            sel.stats.qpf_uses < 2500,
            "qpf = {} (baseline would be ~10000+)",
            sel.stats.qpf_uses
        );
    }

    #[test]
    fn md_complete_splits_policy_grows_k_more() {
        let (kbs1, oracle1) = setup(3000, 2, 10, 9);
        let ranges = [(2000, 4000), (5000, 8000)];
        let k_before: usize = kbs1.iter().map(Knowledge::k).sum();
        let (kbs_partial, sel_a) = run_md(kbs1, &oracle1, &ranges, MdUpdatePolicy::PartialOnly, 10);
        let k_partial: usize = kbs_partial.iter().map(Knowledge::k).sum();

        let (kbs2, oracle2) = setup(3000, 2, 10, 9);
        let (kbs_complete, sel_b) =
            run_md(kbs2, &oracle2, &ranges, MdUpdatePolicy::CompleteSplits, 10);
        let k_complete: usize = kbs_complete.iter().map(Knowledge::k).sum();

        assert_eq!(sel_a.sorted(), sel_b.sorted());
        assert!(k_complete >= k_partial, "{k_complete} vs {k_partial}");
        assert!(k_complete >= k_before);
        // Completing splits costs at least as much QPF.
        assert!(sel_b.stats.qpf_uses >= sel_a.stats.qpf_uses);
        for kb in kbs_partial.iter().chain(&kbs_complete) {
            kb.check_invariants();
        }
    }

    #[test]
    fn md_frozen_policy_never_updates() {
        let (kbs, oracle) = setup(2000, 2, 10, 11);
        let k_before: Vec<usize> = kbs.iter().map(Knowledge::k).collect();
        let ranges = [(1000, 5000), (2000, 6000)];
        let (kbs, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::Frozen, 12);
        assert_eq!(sel.sorted(), expected(&oracle, &ranges));
        let k_after: Vec<usize> = kbs.iter().map(Knowledge::k).collect();
        assert_eq!(k_before, k_after);
    }

    #[test]
    fn md_empty_result() {
        let (kbs, oracle) = setup(1000, 2, 10, 13);
        let ranges = [(20_000, 30_000), (0, 10_000)];
        let (_, sel) = run_md(kbs, &oracle, &ranges, MdUpdatePolicy::PartialOnly, 14);
        assert!(sel.tuples.is_empty());
    }

    #[test]
    fn md_repeated_queries_converge_to_cheap() {
        let (mut kbs, oracle) = setup(4000, 2, 0, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let mut last_cost = u64::MAX;
        for round in 0..30 {
            let lo0 = rng.gen_range(0..8000u64);
            let lo1 = rng.gen_range(0..8000u64);
            let ranges = [(lo0, lo0 + 1500), (lo1, lo1 + 1500)];
            let (k2, sel) = run_md(
                kbs,
                &oracle,
                &ranges,
                MdUpdatePolicy::PartialOnly,
                17 + round,
            );
            kbs = k2;
            assert_eq!(sel.sorted(), expected(&oracle, &ranges), "round {round}");
            last_cost = sel.stats.qpf_uses;
        }
        let total_k: usize = kbs.iter().map(Knowledge::k).sum();
        assert!(
            total_k > 10,
            "knowledge should accumulate, k sum = {total_k}"
        );
        assert!(
            last_cost < 2 * 4000,
            "after 30 rounds cost {last_cost} should be well under the 16000 baseline"
        );
    }
}
