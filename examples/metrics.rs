//! Query-cost observability quickstart: per-query `QueryStats`, the global
//! metrics registry, and the stable `prkb-metrics/v4` JSON snapshot.
//!
//! Every `PrkbEngine` entry point records into `prkb::core::metrics::global()`
//! automatically — counters are lock-free atomics, so the overhead is a few
//! relaxed adds per query and nothing at all is spent formatting until a
//! snapshot is taken.
//!
//! Run with: `cargo run --example metrics --release`

use prkb::core::{metrics, EngineConfig, PrkbEngine};
use prkb::datagen::synthetic;
use prkb::edbms::{ComparisonOp, DataOwner, Predicate, SpOracle, TmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 50_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let col = synthetic::uniform_column(N, 7);
    let plain = prkb::edbms::PlainTable::single_column("t", "x", col);
    let owner = DataOwner::with_seed(7);
    let table = owner.encrypt_table(&plain, &mut rng);
    let tm = owner.trusted_machine(TmConfig::default());
    let oracle = SpOracle::new(&table, &tm);

    let mut engine: PrkbEngine<_> = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, N);

    // Fresh baseline for the demo (the registry is process-global).
    metrics::global().reset();

    // --- Per-query stats: the full cost breakdown of each selection. -----
    println!("query                          qpf  probes  batches  ns_width  k_after");
    for (i, bound) in [40_000u64, 10_000, 25_000, 25_500, 24_800]
        .iter()
        .enumerate()
    {
        let p = owner
            .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Lt, *bound), &mut rng)
            .expect("valid predicate");
        let sel = engine.select(&oracle, &p, &mut rng);
        let s = sel.stats;
        println!(
            "#{i} x < {bound:>6}        {:>10}  {:>6}  {:>7}  {:>8}  {:>7}",
            s.qpf_uses, s.filter_probes, s.oracle_batches, s.ns_width, s.k_after
        );
    }

    // --- The registry: cumulative counters + log-scale histograms. -------
    let snap = metrics::global().snapshot();
    println!();
    println!(
        "comparison queries: {}   total QPF: {}   oracle batches: {}",
        snap.counter("queries_comparison").unwrap_or(0),
        snap.counter("query_qpf_uses").unwrap_or(0),
        snap.counter("oracle_batches").unwrap_or(0),
    );
    println!(
        "partitions pruned (true/false): {}/{}   splits: {}",
        snap.counter("partitions_pruned_true").unwrap_or(0),
        snap.counter("partitions_pruned_false").unwrap_or(0),
        snap.counter("splits").unwrap_or(0),
    );
    if let Some(h) = snap.histogram("qpf_per_query") {
        println!("qpf_per_query histogram (log2 buckets): {h:?}");
    }

    // --- Machine-readable export: stable prkb-metrics/v4 schema. ---------
    println!();
    println!("{}", snap.to_json());
}
