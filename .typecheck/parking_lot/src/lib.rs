//! Offline typecheck stub for `parking_lot` (RwLock/Mutex, non-poisoning).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock(StdRwLock::new(t))
    }
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex(StdMutex::new(t))
    }
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
