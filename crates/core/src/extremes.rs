//! Extreme-value queries from POP knowledge — the paper's §9 future-work
//! item: *"The partial order information in PRKB can also be used in
//! optimizing queries like Min, Max …"*.
//!
//! The POP orders partitions by value but hides the direction, so the
//! minimum (or maximum) tuple must live in one of the two **end**
//! partitions. The service provider therefore returns `P₁ ∪ P_k` as the
//! certified candidate set — `O(n/k)` tuples instead of `n` — and the data
//! owner (or trusted machine) resolves the winner after decryption. The same
//! argument gives top-m candidates by peeling partitions from both ends.

use crate::knowledge::Knowledge;
use crate::traits::SpPredicate;
use prkb_edbms::TupleId;

/// Candidates guaranteed to contain the minimum *and* the maximum tuple.
///
/// Returns all tuples of the two end partitions plus every overflow tuple
/// (whose position is not pinned). With `k == 1` this degenerates to the
/// whole table, with `k == 0` to just the overflow.
pub fn extreme_candidates<P: SpPredicate>(kb: &Knowledge<P>) -> Vec<TupleId> {
    let pop = kb.pop();
    let mut out = Vec::new();
    match pop.k() {
        0 => {}
        1 => out.extend_from_slice(pop.members_at(0)),
        k => {
            out.extend_from_slice(pop.members_at(0));
            out.extend_from_slice(pop.members_at(k - 1));
        }
    }
    out.extend(kb.overflow().iter().map(|e| e.tuple));
    out
}

/// Candidates guaranteed to contain the `m` smallest *and* the `m` largest
/// tuples: partitions are peeled from both ends until each side holds at
/// least `m` placed tuples (or the POP is exhausted). Overflow tuples are
/// always included.
///
/// The caller resolves which side is which (and the exact order) after
/// decryption; the guarantee here is set containment.
pub fn top_m_candidates<P: SpPredicate>(kb: &Knowledge<P>, m: usize) -> Vec<TupleId> {
    let pop = kb.pop();
    let k = pop.k();
    let mut out: Vec<TupleId> = Vec::new();
    if k > 0 {
        let mut lo_rank = 0usize;
        let mut hi_rank = k - 1;
        let mut lo_count = 0usize;
        let mut hi_count = 0usize;
        loop {
            let exhausted = lo_rank > hi_rank;
            if exhausted || (lo_count >= m && hi_count >= m) {
                break;
            }
            if lo_count < m && lo_rank <= hi_rank {
                let members = pop.members_at(lo_rank);
                out.extend_from_slice(members);
                lo_count += members.len();
                lo_rank += 1;
            }
            if hi_count < m && hi_rank + 1 > lo_rank {
                let members = pop.members_at(hi_rank);
                out.extend_from_slice(members);
                hi_count += members.len();
                if hi_rank == 0 {
                    break;
                }
                hi_rank -= 1;
            }
        }
    }
    out.extend(kb.overflow().iter().map(|e| e.tuple));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sd::process_comparison;
    use prkb_edbms::testing::PlainOracle;
    use prkb_edbms::{ComparisonOp, Predicate};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn warmed(n: usize, cuts: usize, seed: u64) -> (Knowledge<Predicate>, PlainOracle, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        let oracle = PlainOracle::single_column(values.clone());
        let mut kb: Knowledge<Predicate> = Knowledge::init(n);
        for _ in 0..cuts {
            let c = rng.gen_range(0..1_000_000u64);
            process_comparison(
                &mut kb,
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, c),
                &mut rng,
                true,
            );
        }
        (kb, oracle, values)
    }

    #[test]
    fn extremes_always_in_candidates() {
        let (kb, _oracle, values) = warmed(5_000, 100, 1);
        let cands = extreme_candidates(&kb);
        let min_t = (0..values.len()).min_by_key(|&i| values[i]).unwrap() as TupleId;
        let max_t = (0..values.len()).max_by_key(|&i| values[i]).unwrap() as TupleId;
        assert!(cands.contains(&min_t), "min tuple missing");
        assert!(cands.contains(&max_t), "max tuple missing");
        // The win: far fewer candidates than tuples.
        assert!(
            cands.len() * 10 < values.len(),
            "{} candidates of {}",
            cands.len(),
            values.len()
        );
    }

    #[test]
    fn top_m_contains_both_tails() {
        let (kb, _oracle, values) = warmed(5_000, 150, 2);
        let m = 25usize;
        let cands: std::collections::HashSet<TupleId> =
            top_m_candidates(&kb, m).into_iter().collect();
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by_key(|&i| values[i]);
        for &i in order.iter().take(m) {
            assert!(
                cands.contains(&(i as TupleId)),
                "bottom-{m} tuple {i} missing"
            );
        }
        for &i in order.iter().rev().take(m) {
            assert!(cands.contains(&(i as TupleId)), "top-{m} tuple {i} missing");
        }
        assert!(cands.len() * 5 < values.len());
    }

    #[test]
    fn degenerate_knowledge_returns_everything() {
        let (kb, _oracle, values) = warmed(100, 0, 3);
        assert_eq!(extreme_candidates(&kb).len(), values.len());
        assert_eq!(top_m_candidates(&kb, 5).len(), values.len());
    }

    #[test]
    fn empty_knowledge() {
        let kb: Knowledge<Predicate> = Knowledge::init(0);
        assert!(extreme_candidates(&kb).is_empty());
        assert!(top_m_candidates(&kb, 3).is_empty());
    }

    #[test]
    fn top_m_larger_than_table() {
        let (kb, _oracle, values) = warmed(50, 10, 4);
        let cands = top_m_candidates(&kb, 1000);
        assert_eq!(cands.len(), values.len(), "must fall back to all tuples");
    }

    #[test]
    fn candidates_never_duplicate() {
        let (kb, _oracle, _values) = warmed(500, 60, 5);
        for m in [1usize, 10, 100] {
            let cands = top_m_candidates(&kb, m);
            let set: std::collections::HashSet<_> = cands.iter().collect();
            assert_eq!(set.len(), cands.len(), "duplicates at m={m}");
        }
    }
}
