//! The PRKB(MD) executor (paper §6.2).

use super::zones::{rank_classes, RankClass};
use super::{MdDim, MdUpdatePolicy};
use crate::knowledge::Separator;
use crate::qfilter::{try_qfilter, FilterResult};
use crate::selection::{QueryStats, Selection};
use crate::traits::SpPredicate;
use crate::update::order_halves;
use prkb_edbms::{OracleError, SelectionOracle, TupleId};
use rand::Rng;
use std::collections::HashMap;

/// Early-stop inference state for one trapdoor's NS pair.
struct NsState {
    a: usize,
    b: usize,
    label_a: bool,
    label_b: bool,
    a_true: usize,
    a_false: usize,
    b_true: usize,
    b_false: usize,
    /// Rank that proved non-homogeneous (the separating partition).
    resolved: Option<usize>,
}

impl NsState {
    fn from_filter(f: &FilterResult) -> Option<Self> {
        let (a, b) = f.ns?;
        Some(NsState {
            a,
            b,
            label_a: f.label_a,
            label_b: f.label_b,
            a_true: 0,
            a_false: 0,
            b_true: 0,
            b_false: 0,
            resolved: None,
        })
    }

    /// Implied outcome for a tuple at `rank`, when the pair partner already
    /// proved non-homogeneous (paper's early-stop inference).
    fn inferred(&self, rank: usize) -> Option<bool> {
        let s = self.resolved?;
        if rank == s {
            return None; // the separating partition itself must be tested
        }
        if rank == self.a {
            Some(self.label_a)
        } else if rank == self.b {
            Some(self.label_b)
        } else {
            None
        }
    }

    fn record(&mut self, rank: usize, out: bool) {
        if rank == self.a {
            if out {
                self.a_true += 1;
            } else {
                self.a_false += 1;
            }
            if self.a_true > 0 && self.a_false > 0 {
                self.resolved = Some(self.a);
            }
        }
        // A single-partition POP has a == b: count both sides once.
        if rank == self.b && self.a != self.b {
            if out {
                self.b_true += 1;
            } else {
                self.b_false += 1;
            }
            if self.b_true > 0 && self.b_false > 0 {
                self.resolved = Some(self.b);
            }
        }
    }
}

/// Runs the MD pipeline. Abort-safe by construction: phases 1–2 and the
/// pending-split *collection* of phase 3 are fallible and read-only; splits
/// for all dimensions are committed only after every oracle evaluation of
/// the whole query has succeeded.
pub(crate) fn run<O, R>(
    dims: &mut [MdDim<O::Pred>],
    oracle: &O,
    rng: &mut R,
    policy: MdUpdatePolicy,
) -> Result<Selection, OracleError>
where
    O: SelectionOracle,
    O::Pred: SpPredicate,
    R: Rng,
{
    let qpf_before = oracle.qpf_uses();
    let k_before: usize = dims.iter().map(|d| d.knowledge.k()).sum();
    let d = dims.len();

    // Phase 1: QFilter every trapdoor, classify every partition (per rank —
    // O(k), never O(n)).
    let mut filters: Vec<[FilterResult; 2]> = Vec::with_capacity(d);
    for dim in dims.iter() {
        let f0 = try_qfilter(dim.knowledge.pop(), oracle, &dim.preds[0], rng)?;
        let f1 = try_qfilter(dim.knowledge.pop(), oracle, &dim.preds[1], rng)?;
        filters.push([f0, f1]);
    }
    let filter_probes = oracle.qpf_uses().saturating_sub(qpf_before);
    let classes: Vec<Vec<RankClass>> = dims
        .iter()
        .zip(&filters)
        .map(|(dim, f)| rank_classes(dim.knowledge.pop().k(), f))
        .collect();

    // Cost breakdown: NS-pair width per trapdoor, label-pruned partitions.
    let ns_width: u64 = dims
        .iter()
        .zip(&filters)
        .map(|(dim, fs)| {
            fs.iter()
                .filter_map(|f| f.ns)
                .map(|(a, b)| {
                    let pop = dim.knowledge.pop();
                    let mut w = pop.members_at(a).len();
                    if b != a {
                        w += pop.members_at(b).len();
                    }
                    w as u64
                })
                .sum::<u64>()
        })
        .sum();
    let pruned_true: usize = classes
        .iter()
        .map(|cs| cs.iter().filter(|c| c.known_true()).count())
        .sum();
    let pruned_false: usize = classes
        .iter()
        .map(|cs| cs.iter().filter(|c| c.known_false()).count())
        .sum();
    let mut oracle_batches = 0u64;

    let mut ns_states: Vec<[Option<NsState>; 2]> = filters
        .iter()
        .map(|f| [NsState::from_filter(&f[0]), NsState::from_filter(&f[1])])
        .collect();
    // Tested outcomes per (dim, predicate), for the update phase.
    let mut outcomes: Vec<[Vec<(TupleId, bool)>; 2]> =
        (0..d).map(|_| [Vec::new(), Vec::new()]).collect();

    // Phase 2: walk the candidate region — only the *driver* dimension's
    // non-F partitions (its T ∪ NS band) plus its unplaced (overflow)
    // tuples. Every winner must lie in that band, so nothing is missed, and
    // per-query work is proportional to the band, not the table (the
    // paper's Fig. 6b grid pruning).
    let driver = (0..d)
        .min_by_key(|&di| {
            let pop = dims[di].knowledge.pop();
            let band: usize = (0..pop.k())
                .filter(|&r| !classes[di][r].known_false())
                .map(|r| pop.members_at(r).len())
                .sum();
            band + dims[di].knowledge.overflow().len()
        })
        .unwrap_or(0);

    let overflow_scanned = dims[driver].knowledge.overflow().len();
    let mut candidates: Vec<TupleId> = Vec::new();
    {
        let pop = dims[driver].knowledge.pop();
        for (r, class) in classes[driver].iter().enumerate().take(pop.k()) {
            if !class.known_false() {
                candidates.extend_from_slice(pop.members_at(r));
            }
        }
        candidates.extend(dims[driver].knowledge.overflow().iter().map(|e| e.tuple));
    }

    // Free pass first: a tuple provably out in *any* dimension is discarded
    // before a single QPF is spent on it (Fig. 6b pruning). Classes are
    // fixed for the whole phase, so this prunes the candidate list upfront.
    let mut survivors: Vec<TupleId> = Vec::new();
    'cands: for t in candidates {
        if !oracle.is_live(t) {
            continue;
        }
        for (di, dim) in dims.iter().enumerate() {
            if let Some(r) = dim.knowledge.pop().rank_of_tuple(t) {
                if classes[di][r].known_false() {
                    continue 'cands;
                }
            }
        }
        survivors.push(t);
    }

    // Evaluate wave-major: one wave per (dimension, trapdoor), each over the
    // tuples that survived every earlier wave. This is QPF-count-identical
    // to the tuple-major loop with per-tuple short-circuit: the early-stop
    // state of a (dim, trapdoor) pair is only read and written by its own
    // wave, and in the same candidate order the per-tuple loop would visit.
    // Within a wave, only tuples in the NS pair itself can flip from
    // "evaluate" to "inferred" (when an earlier tuple resolves the pair), so
    // they run sequentially through the state machine; tuples at every
    // other rank — and overflow tuples — are evaluated unconditionally and
    // go through one lock-hoisted oracle batch.
    let mut wave: Vec<bool> = Vec::new();
    let mut batch: Vec<TupleId> = Vec::new();
    let mut batch_meta: Vec<(usize, bool)> = Vec::new();
    let mut verdicts: Vec<bool> = Vec::new();
    for (di, dim) in dims.iter().enumerate() {
        let pop = dim.knowledge.pop();
        for j in 0..2 {
            if survivors.is_empty() {
                break;
            }
            wave.clear();
            wave.resize(survivors.len(), true);
            batch.clear();
            batch_meta.clear();
            for (i, &t) in survivors.iter().enumerate() {
                let rank = pop.rank_of_tuple(t);
                let class = rank.map(|r| classes[di][r]);
                if let Some(c) = class {
                    debug_assert!(!c.known_false(), "filtered by the free pass");
                    if c.known_true() {
                        continue;
                    }
                    if c.pred(j) == Some(true) {
                        continue;
                    }
                }
                match (&ns_states[di][j], rank) {
                    (Some(st), Some(r)) if r == st.a || r == st.b => {
                        // NS-pair tuple: may be inferred, and a tested
                        // outcome feeds the early-stop state for the tuples
                        // after it — keep strictly in candidate order.
                        wave[i] = if let Some(v) = st.inferred(r) {
                            v
                        } else {
                            let v = oracle.try_eval(&dim.preds[j], t)?;
                            outcomes[di][j].push((t, v));
                            ns_states[di][j]
                                .as_mut()
                                .expect("state present")
                                .record(r, v);
                            v
                        };
                    }
                    (st, rank) => {
                        // Outside the NS pair the outcome is never inferred
                        // (and never resolves the pair), so the evaluation
                        // is unconditional: batch it. The outcome is kept
                        // for the update phase only when the tuple sits in
                        // a partition (overflow outcomes cannot feed a
                        // split).
                        batch.push(t);
                        batch_meta.push((i, st.is_some() && rank.is_some()));
                    }
                }
            }
            if !batch.is_empty() {
                oracle_batches += 1;
                oracle.try_eval_batch(&dim.preds[j], &batch, &mut verdicts)?;
                for (k, &v) in verdicts.iter().enumerate() {
                    let (i, keep_outcome) = batch_meta[k];
                    wave[i] = v;
                    if keep_outcome {
                        outcomes[di][j].push((batch[k], v));
                    }
                }
            }
            let mut keep = wave.iter().copied();
            survivors.retain(|_| keep.next().expect("one verdict per survivor"));
        }
    }
    let winners = survivors;

    // Phase 3: refine each dimension's POP from fully-decided partitions.
    // Pending splits are *collected* for every dimension first (the only
    // phase-3 step that can touch the oracle, under CompleteSplits), and
    // committed only once the whole query has evaluated cleanly — an error
    // in dimension i must not leave dimensions 0..i already refined.
    let mut splits = 0usize;
    if policy != MdUpdatePolicy::Frozen {
        let mut all_pending: Vec<Vec<PendingSplit>> = Vec::with_capacity(d);
        for di in 0..d {
            all_pending.push(collect_dim_updates(
                &dims[di],
                oracle,
                &filters[di],
                &ns_states[di],
                &outcomes[di],
                policy,
            )?);
        }
        // ---- Commit phase: infallible, no oracle calls past this point. ----
        for (dim, pending) in dims.iter_mut().zip(all_pending) {
            splits += commit_dim_updates(dim, pending);
        }
    }

    Ok(Selection {
        tuples: winners,
        stats: QueryStats {
            qpf_uses: oracle.qpf_uses().saturating_sub(qpf_before),
            k_before,
            k_after: dims.iter().map(|d| d.knowledge.k()).sum(),
            splits,
            filter_probes,
            ns_width,
            oracle_batches,
            pruned_true,
            pruned_false,
            overflow_scanned,
        },
    })
}

/// A staged split: (rank, left, right, left_label, pred_idx).
type PendingSplit = (usize, Vec<TupleId>, Vec<TupleId>, bool, usize);

/// Gathers the sound refinements for one dimension without mutating it.
/// Under [`MdUpdatePolicy::CompleteSplits`] this may spend QPF uses to
/// finish partially-decided partitions — the only fallible step of phase 3.
fn collect_dim_updates<O>(
    dim: &MdDim<O::Pred>,
    oracle: &O,
    filters: &[FilterResult; 2],
    ns_states: &[Option<NsState>; 2],
    outcomes: &[Vec<(TupleId, bool)>; 2],
    policy: MdUpdatePolicy,
) -> Result<Vec<PendingSplit>, OracleError>
where
    O: SelectionOracle,
    O::Pred: SpPredicate,
{
    let mut pending: Vec<PendingSplit> = Vec::new();

    for j in 0..2 {
        let Some(st) = &ns_states[j] else { continue };
        let filter = &filters[j];
        let ranks: Vec<usize> = if st.a == st.b {
            vec![st.a]
        } else {
            vec![st.a, st.b]
        };
        for &r in &ranks {
            let members = dim.knowledge.pop().members_at(r);
            let mut map: HashMap<TupleId, bool> = HashMap::new();
            for &(t, v) in &outcomes[j] {
                if dim.knowledge.pop().rank_of_tuple(t) == Some(r) {
                    map.insert(t, v);
                }
            }
            let t_cnt = map.values().filter(|v| **v).count();
            let f_cnt = map.len() - t_cnt;
            if t_cnt == 0 || f_cnt == 0 {
                continue; // homogeneous so far: nothing to refine
            }
            if map.len() < members.len() {
                if policy != MdUpdatePolicy::CompleteSplits {
                    continue; // partial knowledge: a split would be unsound
                }
                // Ablation mode: pay the missing QPF to finish the split.
                for &t in members {
                    if let std::collections::hash_map::Entry::Vacant(e) = map.entry(t) {
                        e.insert(oracle.try_eval(&dim.preds[j], t)?);
                    }
                }
            }
            let (mut true_half, mut false_half) = (Vec::new(), Vec::new());
            for &t in dim.knowledge.pop().members_at(r) {
                if map[&t] {
                    true_half.push(t);
                } else {
                    false_half.push(t);
                }
            }
            // Neighbour labels for the ordering rule. This rank is mixed, so
            // it *is* the separating partition — the pair partner is
            // homogeneous with its sampled label (Lemma 4.5).
            let other = if r == st.a { st.b } else { st.a };
            let other_label = Some(if other == st.a {
                st.label_a
            } else {
                st.label_b
            });
            let label_of = |q: usize| {
                if q == other {
                    other_label
                } else {
                    filter.known_label(q)
                }
            };
            let (left, right, left_label) =
                order_halves(dim.knowledge.k(), r, true_half, false_half, label_of);
            pending.push((r, left, right, left_label, j));
        }
    }
    Ok(pending)
}

/// Commits the staged splits for one dimension. Returns the split count.
/// Infallible: never touches the oracle.
fn commit_dim_updates<P: SpPredicate>(dim: &mut MdDim<P>, mut pending: Vec<PendingSplit>) -> usize {
    // Apply descending by rank so earlier splits do not shift later ones;
    // if both trapdoors split the same partition, keep the first only
    // (re-deriving the second against the new sub-partitions is future
    // work the paper does not require).
    pending.sort_by_key(|e| std::cmp::Reverse(e.0));
    pending.dedup_by_key(|e| e.0);
    let n = pending.len();
    for (rank, left, right, left_label, j) in pending {
        let sep = Separator::Cmp {
            pred: dim.preds[j].clone(),
            left_label,
        };
        dim.knowledge.apply_split(rank, left, right, Some(sep));
    }
    n
}
