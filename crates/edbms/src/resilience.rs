//! Fault injection and retry middleware for the SP↔TM boundary.
//!
//! In the paper's deployment the QPF is served by a *physically separate*
//! trusted machine, so every Θ evaluation crosses a network/enclave hop that
//! can drop requests, time out, or return garbage. This module provides the
//! two halves needed to engineer — and test — tolerance of that hop:
//!
//! * [`FaultInjector`] wraps any [`SelectionOracle`] and injects a
//!   **deterministic, seeded** schedule of [`OracleError::Transient`] /
//!   [`OracleError::Timeout`] / [`OracleError::Corruption`] failures, with
//!   QPF accounting faithful to each class (a lost *request* costs nothing;
//!   a lost *response* was still a decrypt round-trip).
//! * [`RetryOracle`] wraps any oracle with bounded retries, exponential
//!   backoff with deterministic jitter, and a circuit breaker that converts
//!   repeated failures into fast-fail [`OracleError::Unavailable`] errors
//!   without hammering a down trusted machine.
//!
//! Both middlewares are deterministic given their seeds, which is what lets
//! the `fault_tolerance` proptests assert that a faulty-but-retried run is
//! *byte-identical* (results, splits, final knowledge base) to a fault-free
//! run.

use crate::oracle::{OracleError, SelectionOracle};
use crate::schema::TupleId;
use crate::trapdoor::PredicateKind;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// SplitMix64 finalizer: a cheap, well-mixed hash for deterministic
/// per-call fault/jitter schedules. Public because every seeded-fault
/// harness in the workspace (oracle faults, network chaos, client backoff
/// jitter) derives its schedule from the same mixer, so one seed reproduces
/// one run everywhere.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which fault class the schedule picked for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Transient,
    Timeout,
    Corruption,
}

/// Deterministic fault schedule: per-mille rates per evaluation, hashed
/// from `(seed, call index)` so a given seed always faults the same calls.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Schedule seed. Same seed ⇒ same faulted call indices.
    pub seed: u64,
    /// Rate (per 1000 calls) of lost-request faults ([`OracleError::Transient`]).
    pub transient_per_mille: u16,
    /// Rate (per 1000 calls) of lost-response faults ([`OracleError::Timeout`]).
    pub timeout_per_mille: u16,
    /// Rate (per 1000 calls) of integrity faults ([`OracleError::Corruption`]).
    pub corruption_per_mille: u16,
    /// Hard cap on *consecutive* injected faults (0 disables the cap).
    /// With `max_consecutive = c`, any retry loop allowing at least `c + 1`
    /// attempts is guaranteed to eventually see a clean call — this is what
    /// makes "retries recover everything" provable in tests rather than
    /// merely probable.
    pub max_consecutive: u32,
}

impl FaultConfig {
    /// A retryable-only schedule (transient + timeout, no corruption) at
    /// roughly 1-in-12 calls, capped at 2 consecutive faults. Suitable for
    /// equivalence tests: every fault is recoverable within 3 attempts.
    pub fn retryable(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_per_mille: 50,
            timeout_per_mille: 30,
            corruption_per_mille: 0,
            max_consecutive: 2,
        }
    }

    /// A schedule that also injects non-retryable corruption faults, for
    /// abort-safety tests (a corruption aborts the query mid-flight).
    pub fn with_corruption(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_per_mille: 30,
            timeout_per_mille: 20,
            corruption_per_mille: 25,
            max_consecutive: 0,
        }
    }

    /// Reads `PRKB_FAULT_SEED` and, when set, builds the standard retryable
    /// schedule with that seed. This is the hook the CI fault-injection job
    /// uses to rerun the tier-1 suite with deterministic faults on.
    pub fn from_env() -> Option<Self> {
        std::env::var("PRKB_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Self::retryable)
    }
}

/// A deterministic fault-injecting wrapper around any [`SelectionOracle`].
///
/// QPF accounting is faithful to the fault class: a [`Fault::Transient`]
/// fault models a request that never reached the trusted machine (the inner
/// oracle is *not* called — no QPF spent), while timeout and corruption
/// faults model a lost or garbled *response* (the inner oracle *is* called
/// and its QPF use is spent, but the verdict is withheld).
///
/// Batch evaluation deliberately routes through the per-tuple path so the
/// fault schedule advances one call index per evaluation regardless of how
/// callers batch — making schedules reproducible across code paths.
#[derive(Debug)]
pub struct FaultInjector<O> {
    inner: O,
    cfg: FaultConfig,
    calls: AtomicU64,
    consecutive: AtomicU32,
    injected: AtomicU64,
}

impl<O> FaultInjector<O> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: O, cfg: FaultConfig) -> Self {
        FaultInjector {
            inner,
            cfg,
            calls: AtomicU64::new(0),
            consecutive: AtomicU32::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Total evaluations requested through this injector.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The fault (if any) scheduled for call index `idx`, before the
    /// consecutive-fault cap is applied.
    fn scheduled(&self, idx: u64) -> Option<Fault> {
        let FaultConfig {
            transient_per_mille: tr,
            timeout_per_mille: to,
            corruption_per_mille: co,
            ..
        } = self.cfg;
        let total = u64::from(tr) + u64::from(to) + u64::from(co);
        if total == 0 {
            return None;
        }
        let r = mix(self.cfg.seed ^ idx.wrapping_mul(0x9e37_79b9)) % 1000;
        if r < u64::from(tr) {
            Some(Fault::Transient)
        } else if r < u64::from(tr) + u64::from(to) {
            Some(Fault::Timeout)
        } else if r < total {
            Some(Fault::Corruption)
        } else {
            None
        }
    }

    /// Draws the next call's fault decision and maintains the
    /// consecutive-fault cap.
    fn next_fault(&self) -> Option<Fault> {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.scheduled(idx) {
            Some(f)
                if self.cfg.max_consecutive == 0
                    || self.consecutive.load(Ordering::Relaxed) < self.cfg.max_consecutive =>
            {
                self.consecutive.fetch_add(1, Ordering::Relaxed);
                self.injected.fetch_add(1, Ordering::Relaxed);
                Some(f)
            }
            _ => {
                self.consecutive.store(0, Ordering::Relaxed);
                None
            }
        }
    }
}

impl<O: SelectionOracle> SelectionOracle for FaultInjector<O> {
    type Pred = O::Pred;

    fn try_eval(&self, pred: &Self::Pred, t: TupleId) -> Result<bool, OracleError> {
        match self.next_fault() {
            None => self.inner.try_eval(pred, t),
            Some(Fault::Transient) => Err(OracleError::Transient(format!(
                "injected: request for tuple {t} lost before the TM"
            ))),
            Some(Fault::Timeout) => {
                // The TM did the work (QPF spent), the response was lost.
                let _ = self.inner.try_eval(pred, t);
                Err(OracleError::Timeout(format!(
                    "injected: response for tuple {t} not observed in time"
                )))
            }
            Some(Fault::Corruption) => {
                // The round-trip happened but the response bytes are garbage.
                let _ = self.inner.try_eval(pred, t);
                Err(OracleError::Corruption(format!(
                    "injected: response for tuple {t} failed its integrity check"
                )))
            }
        }
    }

    // try_eval_batch: default per-tuple loop, intentionally — see type docs.

    fn kind_of(&self, pred: &Self::Pred) -> PredicateKind {
        self.inner.kind_of(pred)
    }

    fn n_slots(&self) -> usize {
        self.inner.n_slots()
    }

    fn is_live(&self, t: TupleId) -> bool {
        self.inner.is_live(t)
    }

    fn qpf_uses(&self) -> u64 {
        self.inner.qpf_uses()
    }
}

/// Retry/backoff/circuit-breaker policy for [`RetryOracle`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per evaluation (first try + retries), minimum 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    /// `Duration::ZERO` disables sleeping entirely (test mode).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the deterministic ±50% backoff jitter.
    pub jitter_seed: u64,
    /// Consecutive *exhausted* evaluations (all attempts failed) before the
    /// breaker opens. 0 disables the breaker.
    pub trip_after: u32,
    /// Number of calls fast-failed with [`OracleError::Unavailable`] while
    /// the breaker is open, before a half-open probe is allowed through.
    pub cooldown_calls: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
            jitter_seed: 0x5eed,
            trip_after: 8,
            cooldown_calls: 16,
        }
    }
}

impl RetryPolicy {
    /// A zero-delay policy for tests: same retry/breaker logic, no sleeping.
    pub fn fast(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }
}

/// Circuit-breaker states (stored in an `AtomicU8`).
const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// A fault-tolerant wrapper around any [`SelectionOracle`].
///
/// Each evaluation gets up to [`RetryPolicy::max_attempts`] tries; only
/// [retryable](OracleError::is_retryable) errors (transient, timeout) are
/// retried, with exponential backoff and deterministic jitter between
/// attempts. Retried evaluations that reach the trusted machine are *real
/// QPF cost* — the counter keeps every spent round-trip, so fault-path cost
/// is visible in the paper's metric, not hidden.
///
/// When [`RetryPolicy::trip_after`] consecutive evaluations exhaust their
/// attempts, the circuit breaker opens: the next
/// [`RetryPolicy::cooldown_calls`] evaluations fast-fail with
/// [`OracleError::Unavailable`] without touching the inner oracle, then one
/// half-open probe is allowed through — success closes the breaker, failure
/// reopens it for another cooldown.
///
/// Batches route through the per-tuple path so each tuple gets its own
/// retry budget (one poisoned tuple cannot consume the whole batch's
/// attempts).
#[derive(Debug)]
pub struct RetryOracle<O> {
    inner: O,
    policy: RetryPolicy,
    state: AtomicU8,
    consecutive_exhausted: AtomicU32,
    open_calls_left: AtomicU32,
    retries: AtomicU64,
    trips: AtomicU64,
    fast_fails: AtomicU64,
    backoffs: AtomicU64,
}

impl<O> RetryOracle<O> {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        RetryOracle {
            inner,
            policy,
            state: AtomicU8::new(CLOSED),
            consecutive_exhausted: AtomicU32::new(0),
            open_calls_left: AtomicU32::new(0),
            retries: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            fast_fails: AtomicU64::new(0),
            backoffs: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Total retry attempts performed (beyond first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Times the circuit breaker opened.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Calls fast-failed while the breaker was open.
    pub fn fast_fails(&self) -> u64 {
        self.fast_fails.load(Ordering::Relaxed)
    }

    /// Whether the breaker is currently open (fast-failing).
    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Relaxed) == OPEN
    }

    /// Gate at the top of every evaluation: fast-fail while open, let a
    /// half-open probe through once the cooldown is spent.
    fn gate(&self) -> Result<(), OracleError> {
        if self.policy.trip_after == 0 || self.state.load(Ordering::Relaxed) != OPEN {
            return Ok(());
        }
        let left = self.open_calls_left.load(Ordering::Relaxed);
        if left > 0 {
            self.open_calls_left.store(left - 1, Ordering::Relaxed);
            self.fast_fails.fetch_add(1, Ordering::Relaxed);
            return Err(OracleError::Unavailable {
                failures: self.consecutive_exhausted.load(Ordering::Relaxed),
            });
        }
        self.state.store(HALF_OPEN, Ordering::Relaxed); // cooldown spent: probe
        Ok(())
    }

    /// Records an evaluation outcome into the breaker state machine.
    fn record(&self, ok: bool) {
        if self.policy.trip_after == 0 {
            return;
        }
        if ok {
            self.consecutive_exhausted.store(0, Ordering::Relaxed);
            self.state.store(CLOSED, Ordering::Relaxed);
        } else {
            let failed = self.consecutive_exhausted.fetch_add(1, Ordering::Relaxed) + 1;
            let probing = self.state.load(Ordering::Relaxed) == HALF_OPEN;
            if probing || failed >= self.policy.trip_after {
                self.state.store(OPEN, Ordering::Relaxed);
                self.open_calls_left
                    .store(self.policy.cooldown_calls, Ordering::Relaxed);
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sleeps the exponential backoff for retry number `attempt` (1-based),
    /// with deterministic ±50% jitter so synchronized retriers decorrelate.
    fn backoff(&self, attempt: u32) {
        if self.policy.base_delay.is_zero() {
            return;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        let exp = self.policy.base_delay.saturating_mul(factor);
        let capped = exp.min(self.policy.max_delay).max(self.policy.base_delay);
        let n = self.backoffs.fetch_add(1, Ordering::Relaxed);
        let j = mix(self.policy.jitter_seed ^ n) % 1000;
        let nanos = capped.as_nanos() as u64;
        let jittered = nanos / 2 + (nanos / 2 / 1000) * j;
        std::thread::sleep(Duration::from_nanos(jittered));
    }
}

impl<O: SelectionOracle> SelectionOracle for RetryOracle<O> {
    type Pred = O::Pred;

    fn try_eval(&self, pred: &Self::Pred, t: TupleId) -> Result<bool, OracleError> {
        self.gate()?;
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match self.inner.try_eval(pred, t) {
                Ok(v) => {
                    self.record(true);
                    return Ok(v);
                }
                Err(e) if e.is_retryable() && attempt < attempts => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff(attempt);
                    attempt += 1;
                }
                Err(e) => {
                    self.record(false);
                    return Err(e);
                }
            }
        }
    }

    // try_eval_batch: default per-tuple loop, intentionally — see type docs.

    fn kind_of(&self, pred: &Self::Pred) -> PredicateKind {
        self.inner.kind_of(pred)
    }

    fn n_slots(&self) -> usize {
        self.inner.n_slots()
    }

    fn is_live(&self, t: TupleId) -> bool {
        self.inner.is_live(t)
    }

    fn qpf_uses(&self) -> u64 {
        self.inner.qpf_uses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ComparisonOp, Predicate};
    use crate::testing::PlainOracle;

    fn oracle() -> PlainOracle {
        PlainOracle::single_column((0..100).collect())
    }

    fn pred() -> Predicate {
        Predicate::cmp(0, ComparisonOp::Lt, 50)
    }

    #[test]
    fn injector_is_deterministic_and_classifies() {
        let cfg = FaultConfig::with_corruption(42);
        let a = FaultInjector::new(oracle(), cfg);
        let b = FaultInjector::new(oracle(), cfg);
        let p = pred();
        let run = |o: &FaultInjector<PlainOracle>| {
            (0..500u32)
                .map(|t| match o.try_eval(&p, t % 100) {
                    Ok(v) => (0u8, v),
                    Err(OracleError::Transient(_)) => (1, false),
                    Err(OracleError::Timeout(_)) => (2, false),
                    Err(OracleError::Corruption(_)) => (3, false),
                    Err(e) => panic!("unexpected class: {e}"),
                })
                .collect::<Vec<_>>()
        };
        let ra = run(&a);
        assert_eq!(ra, run(&b), "same seed ⇒ same schedule");
        assert!(a.injected() > 0, "rates are nonzero, 500 calls must fault");
        assert!(ra.iter().any(|&(c, _)| c == 1), "transient seen");
        assert!(ra.iter().any(|&(c, _)| c == 2), "timeout seen");
        assert!(ra.iter().any(|&(c, _)| c == 3), "corruption seen");
    }

    #[test]
    fn injector_qpf_accounting_matches_fault_class() {
        // Transient = lost request (no QPF); timeout/corruption = lost
        // response (QPF spent).
        let inj = FaultInjector::new(oracle(), FaultConfig::with_corruption(7));
        let p = pred();
        let mut lost_requests = 0u64;
        let n = 400u64;
        for t in 0..n {
            if let Err(OracleError::Transient(_)) = inj.try_eval(&p, (t % 100) as u32) {
                lost_requests += 1;
            }
        }
        assert!(lost_requests > 0, "schedule must include transient faults");
        assert_eq!(
            inj.qpf_uses(),
            n - lost_requests,
            "every call except lost requests reached the TM and was counted"
        );
    }

    #[test]
    fn consecutive_fault_cap_bounds_retry_depth() {
        let cfg = FaultConfig {
            max_consecutive: 2,
            ..FaultConfig::retryable(3)
        };
        let inj = FaultInjector::new(oracle(), cfg);
        let p = pred();
        let mut consecutive = 0u32;
        for t in 0..2000u32 {
            if inj.try_eval(&p, t % 100).is_err() {
                consecutive += 1;
                assert!(
                    consecutive <= 2,
                    "cap must force a clean call after 2 faults"
                );
            } else {
                consecutive = 0;
            }
        }
    }

    #[test]
    fn retries_recover_all_retryable_faults_and_count_qpf() {
        // Satellite: every retried eval still increments qpf_uses — retries
        // are real paper-cost, not free.
        let inj = FaultInjector::new(oracle(), FaultConfig::retryable(11));
        let retry = RetryOracle::new(inj, RetryPolicy::fast(4));
        let p = pred();
        let n = 1000u64;
        for t in 0..n {
            let v = retry
                .try_eval(&p, (t % 100) as u32)
                .expect("retryable faults must recover");
            assert_eq!(v, (t % 100) < 50);
        }
        assert!(retry.retries() > 0, "the schedule must have forced retries");
        // Timeout faults spend a QPF use and then the retry spends another:
        // total uses strictly exceed n whenever a timeout was retried, and
        // equal n + (timeout-faulted calls that reached the TM).
        let inj = retry.inner();
        assert_eq!(
            retry.qpf_uses(),
            inj.calls() - lost_request_count(inj),
            "uses = calls that reached the TM (timeouts included, lost requests excluded)"
        );
        assert!(
            retry.qpf_uses() >= n,
            "successful verdicts alone account for n uses; retried timeouts add more"
        );
    }

    /// Replays the injector's schedule to count lost-request (transient)
    /// faults among the calls it has served so far.
    fn lost_request_count(inj: &FaultInjector<PlainOracle>) -> u64 {
        // Re-derive from the schedule: walk indices 0..calls() applying the
        // same consecutive-cap state machine the injector used.
        let probe = FaultInjector::new(PlainOracle::single_column(vec![]), inj.cfg);
        let mut lost = 0u64;
        for _ in 0..inj.calls() {
            if let Some(Fault::Transient) = probe.next_fault() {
                lost += 1;
            }
        }
        lost
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let inj = FaultInjector::new(
            oracle(),
            FaultConfig {
                seed: 1,
                transient_per_mille: 0,
                timeout_per_mille: 0,
                corruption_per_mille: 1000,
                max_consecutive: 0,
            },
        );
        let retry = RetryOracle::new(inj, RetryPolicy::fast(5));
        let err = retry.try_eval(&pred(), 0).unwrap_err();
        assert!(matches!(err, OracleError::Corruption(_)));
        assert_eq!(retry.retries(), 0, "corruption must not be retried");
    }

    #[test]
    fn breaker_opens_fast_fails_and_recovers() {
        // An always-failing inner oracle (100% transient, no cap).
        let always_down = FaultConfig {
            seed: 5,
            transient_per_mille: 1000,
            timeout_per_mille: 0,
            corruption_per_mille: 0,
            max_consecutive: 0,
        };
        let policy = RetryPolicy {
            trip_after: 3,
            cooldown_calls: 4,
            ..RetryPolicy::fast(2)
        };
        let retry = RetryOracle::new(FaultInjector::new(oracle(), always_down), policy);
        let p = pred();
        // 3 exhausted evaluations trip the breaker…
        for _ in 0..3 {
            assert!(matches!(
                retry.try_eval(&p, 0),
                Err(OracleError::Transient(_))
            ));
        }
        assert!(retry.is_open());
        assert_eq!(retry.trips(), 1);
        let calls_at_trip = retry.inner().calls();
        // …then the cooldown fast-fails without touching the inner oracle…
        for _ in 0..4 {
            assert!(matches!(
                retry.try_eval(&p, 0),
                Err(OracleError::Unavailable { .. })
            ));
        }
        assert_eq!(retry.fast_fails(), 4);
        assert_eq!(
            retry.inner().calls(),
            calls_at_trip,
            "open breaker never reaches the TM"
        );
        // …the half-open probe fails (oracle still down) and reopens…
        assert!(matches!(
            retry.try_eval(&p, 0),
            Err(OracleError::Transient(_))
        ));
        assert_eq!(retry.trips(), 2);
        assert!(retry.is_open());
    }

    #[test]
    fn breaker_closes_on_successful_probe() {
        // Inner oracle that recovers: we flip the schedule off by using an
        // injector with zero rates after tripping via a downed one is not
        // possible with one wrapper, so drive the breaker directly with a
        // clean oracle after a manufactured trip.
        let clean = oracle();
        let policy = RetryPolicy {
            trip_after: 1,
            cooldown_calls: 2,
            ..RetryPolicy::fast(1)
        };
        let retry = RetryOracle::new(
            FaultInjector::new(
                clean,
                FaultConfig {
                    seed: 9,
                    transient_per_mille: 0,
                    timeout_per_mille: 0,
                    corruption_per_mille: 0,
                    max_consecutive: 0,
                },
            ),
            policy,
        );
        let p = pred();
        // Trip via a fatal error (out-of-range tuple exhausts its single
        // attempt immediately).
        assert!(retry.try_eval(&p, 10_000).is_err());
        assert!(retry.is_open());
        for _ in 0..2 {
            assert!(matches!(
                retry.try_eval(&p, 0),
                Err(OracleError::Unavailable { .. })
            ));
        }
        // Half-open probe succeeds and closes the breaker.
        assert_eq!(retry.try_eval(&p, 0), Ok(true));
        assert!(!retry.is_open());
        assert_eq!(retry.try_eval(&p, 60), Ok(false));
    }

    #[test]
    fn from_env_config_shape() {
        // Not testing the env var itself (process-global); just the parser's
        // output shape for a representative seed.
        let cfg = FaultConfig::retryable(99);
        assert_eq!(cfg.seed, 99);
        assert!(
            cfg.max_consecutive > 0,
            "retryable schedules must be bounded"
        );
        assert_eq!(cfg.corruption_per_mille, 0);
    }
}
