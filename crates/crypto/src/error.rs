//! Error type for cryptographic operations.

use std::fmt;

/// Errors raised by primitives in this crate.
///
/// Failures here are *structural* (wrong lengths, corrupted ciphertext
/// framing) rather than probabilistic: the primitives themselves are
/// deterministic once keyed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext buffer was shorter than the fixed framing requires.
    CiphertextTooShort {
        /// Bytes expected at minimum.
        expected: usize,
        /// Bytes actually provided.
        actual: usize,
    },
    /// A key of the wrong length was supplied to a fixed-key primitive.
    BadKeyLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes actually provided.
        actual: usize,
    },
    /// The integrity tag embedded in a ciphertext did not verify.
    TagMismatch,
    /// HKDF was asked to expand more output than 255 blocks allow.
    HkdfOutputTooLong {
        /// Bytes requested.
        requested: usize,
        /// Maximum supported by RFC 5869 with SHA-256.
        max: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::CiphertextTooShort { expected, actual } => write!(
                f,
                "ciphertext too short: need at least {expected} bytes, got {actual}"
            ),
            CryptoError::BadKeyLength { expected, actual } => {
                write!(f, "bad key length: expected {expected} bytes, got {actual}")
            }
            CryptoError::TagMismatch => write!(f, "integrity tag mismatch"),
            CryptoError::HkdfOutputTooLong { requested, max } => {
                write!(f, "HKDF output too long: requested {requested}, max {max}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
