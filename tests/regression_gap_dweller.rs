//! Regression: a parked (overflow) tuple whose value falls into a deletion
//! gap must not receive contradictory rank-interval claims when an
//! *equivalent* trapdoor's value threshold differs from the retained
//! separator threshold at the same boundary (found by proptest, seed
//! 11154505850078906009). The fix restricts overflow refinement to retained
//! separator cuts.

use prkb::core::{EngineConfig, PrkbEngine};
use prkb::edbms::testing::PlainOracle;
use prkb::edbms::{ComparisonOp, Predicate};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy)]
enum Step {
    I(u64),
    D(u16),
    C(u8, u64),
    B(u64, u64),
}

#[test]
fn gap_dwelling_parked_tuple_survives_equivalent_cuts() {
    use Step::*;
    let values: Vec<u64> = vec![
        289, 289, 289, 289, 289, 0, 0, 0, 0, 0, 289, 365, 451, 329, 110, 722, 808, 18, 359, 704,
        34, 30, 102, 564, 992, 402, 925, 54, 775, 580, 379, 930, 993, 935, 1, 882, 741, 681, 901,
        814, 530,
    ];
    let steps = [
        I(944), D(30405), C(3, 791), D(31468), B(202, 461), D(37939), C(0, 159), D(33592),
        B(376, 646), B(511, 865), I(258), D(1863), D(27624), D(30445), B(379, 648), D(38869),
        B(102, 364), C(2, 175), I(1025), I(721), B(371, 463), I(892), D(47444), D(9037), I(507),
        C(0, 494), I(720), B(341, 998), C(0, 288), B(777, 830), C(2, 946), B(276, 1006), I(884),
        C(3, 45), B(411, 573), D(59092), B(824, 1071), I(955), I(970), I(536), C(1, 902),
        D(41147), C(2, 988), B(70, 573), I(751), D(1462), C(1, 839), I(152), B(393, 623),
    ];
    let mut rng = StdRng::seed_from_u64(11154505850078906009);

    let mut oracle = PlainOracle::single_column(values);
    let mut engine: PrkbEngine<Predicate> = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, oracle.expected_select(&Predicate::cmp(0, ComparisonOp::Ge, 0)).len());
    let mut live: Vec<u32> = (0..41).collect();

    for (i, step) in steps.into_iter().enumerate() {
        match step {
            C(o, c) => {
                let p = Predicate::cmp(0, ComparisonOp::ALL[o as usize], c);
                let sel = engine.select(&oracle, &p, &mut rng);
                assert_eq!(sel.sorted(), oracle.expected_select(&p), "step {i}");
            }
            B(lo, hi) => {
                let p = Predicate::between(0, lo, hi);
                let sel = engine.select(&oracle, &p, &mut rng);
                assert_eq!(sel.sorted(), oracle.expected_select(&p), "step {i}");
            }
            I(v) => {
                let t = oracle.insert(&[v]);
                engine.insert(&oracle, t);
                live.push(t);
            }
            D(idx) => {
                if !live.is_empty() {
                    let victim = live.swap_remove(idx as usize % live.len());
                    oracle.delete(victim);
                    engine.delete(victim);
                }
            }
        }
        engine.knowledge(0).expect("attr 0").check_invariants();
    }
}
