//! The selection oracle — the interface between the PRKB engine and the
//! underlying EDBMS.
//!
//! PRKB (the service provider's reasoning layer) never touches plaintext or
//! ciphertext: all it can do is ask "does tuple `t` satisfy trapdoor `p`?"
//! and observe the answer. That is exactly [`SelectionOracle::eval`]. The
//! QPF-use counter exposed alongside is the paper's primary cost metric.

use crate::encrypted::EncryptedTable;
use crate::schema::TupleId;
use crate::trapdoor::{EncryptedPredicate, PredicateKind};
use crate::trusted::TrustedMachine;

/// The Θ oracle of the paper's QPF model, plus the bookkeeping the
/// service provider legitimately has (table size, liveness, cost counter).
pub trait SelectionOracle {
    /// The encrypted-predicate (trapdoor) type.
    type Pred: Clone;

    /// Evaluates Θ(`pred`, tuple `t`). Every call costs one QPF use.
    fn eval(&self, pred: &Self::Pred, t: TupleId) -> bool;

    /// SP-visible shape of the trapdoor (comparison vs BETWEEN).
    fn kind_of(&self, pred: &Self::Pred) -> PredicateKind;

    /// Number of tuple slots, including tombstones.
    fn n_slots(&self) -> usize;

    /// Whether tuple `t` is live (not deleted).
    fn is_live(&self, t: TupleId) -> bool;

    /// Monotonic QPF-use counter.
    fn qpf_uses(&self) -> u64;
}

/// The real oracle: encrypted table + trusted machine.
///
/// # Panics
/// [`SelectionOracle::eval`] panics on storage corruption (bad cell bytes or
/// a trapdoor for the wrong table): in this substrate those are programming
/// errors, not runtime conditions — the real system would fail the query.
#[derive(Debug, Clone, Copy)]
pub struct SpOracle<'a> {
    table: &'a EncryptedTable,
    tm: &'a TrustedMachine,
}

impl<'a> SpOracle<'a> {
    /// Pairs an encrypted table with the trusted machine that can evaluate
    /// trapdoors over it.
    pub fn new(table: &'a EncryptedTable, tm: &'a TrustedMachine) -> Self {
        SpOracle { table, tm }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a EncryptedTable {
        self.table
    }

    /// The underlying trusted machine.
    pub fn tm(&self) -> &'a TrustedMachine {
        self.tm
    }
}

impl SelectionOracle for SpOracle<'_> {
    type Pred = EncryptedPredicate;

    fn eval(&self, pred: &EncryptedPredicate, t: TupleId) -> bool {
        let cell = self
            .table
            .cell(pred.attr(), t)
            .expect("tuple id within table bounds");
        self.tm.qpf(pred, cell).expect("well-formed cell and trapdoor")
    }

    fn kind_of(&self, pred: &EncryptedPredicate) -> PredicateKind {
        pred.kind()
    }

    fn n_slots(&self) -> usize {
        self.table.len()
    }

    fn is_live(&self, t: TupleId) -> bool {
        self.table.is_live(t)
    }

    fn qpf_uses(&self) -> u64 {
        self.tm.qpf_uses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::DataOwner;
    use crate::predicate::{ComparisonOp, Predicate};
    use crate::table::PlainTable;
    use crate::trusted::TmConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sp_oracle_evaluates_and_counts() {
        let owner = DataOwner::with_seed(7);
        let mut rng = StdRng::seed_from_u64(7);
        let plain = PlainTable::single_column("t", "x", vec![1, 5, 9]);
        let enc = owner.encrypt_table(&plain, &mut rng);
        let tm = owner.trusted_machine(TmConfig::default());
        let oracle = SpOracle::new(&enc, &tm);
        let p = owner
            .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Ge, 5), &mut rng)
            .unwrap();
        assert_eq!(oracle.kind_of(&p), PredicateKind::Comparison);
        assert_eq!(oracle.n_slots(), 3);
        assert!(oracle.is_live(2));
        assert!(!oracle.eval(&p, 0));
        assert!(oracle.eval(&p, 1));
        assert!(oracle.eval(&p, 2));
        assert_eq!(oracle.qpf_uses(), 3);
    }
}
