//! Fault-tolerance properties of the PRKB boundary (DESIGN.md §9).
//!
//! Two pinned guarantees:
//!
//! 1. **Fault/retry equivalence** — an engine run over a fault-injected,
//!    retried oracle produces the same selection results and a
//!    byte-identical final knowledge base as the fault-free run, as long as
//!    every fault class is retryable and the retry budget covers the
//!    injector's consecutive-fault cap.
//! 2. **Abort-safety** — when a query *does* fail (non-retryable fault, no
//!    retry wrapper), the engine reports the error and every attribute's
//!    knowledge base is byte-identical to its pre-query state: no partial
//!    splits, no stranded overflow entries, no half-routed inserts.

use prkb_core::snapshot::{self, WireCodec};
use prkb_core::{EngineConfig, PrkbEngine, SpPredicate};
use prkb_edbms::testing::PlainOracle;
use prkb_edbms::{ComparisonOp, FaultConfig, FaultInjector, Predicate, RetryOracle, RetryPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical serialized form of every attribute's knowledge, in attribute
/// order — byte equality here is the paper-index equivalent of "the KB is
/// in the same state".
fn kb_bytes<P: SpPredicate + WireCodec>(engine: &PrkbEngine<P>) -> Vec<Vec<u8>> {
    let mut attrs: Vec<_> = engine.attrs().collect();
    attrs.sort_unstable();
    attrs
        .iter()
        .map(|&a| snapshot::save(engine.knowledge(a).expect("attr indexed")))
        .collect()
}

fn columns(n: usize, extra: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2)
        .map(|_| (0..n + extra).map(|_| rng.gen_range(0..1_000u64)).collect())
        .collect()
}

fn two_attr_engine(n: usize) -> PrkbEngine<Predicate> {
    let mut engine = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, n);
    engine.init_attr(1, n);
    engine
}

/// One round of the mixed workload: comparison, BETWEEN, PRKB(MD),
/// PRKB(SD+), conjunction, insert — everything that can mutate knowledge.
#[derive(Debug, Clone)]
enum Step {
    Cmp(Predicate),
    Md([[Predicate; 2]; 2]),
    Sdplus([[Predicate; 2]; 2]),
    Conjunction(Vec<Predicate>),
    Insert(u32),
}

fn workload(n: usize, extra: usize, seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    let mut next_insert = n as u32;
    for round in 0..14 {
        let lo = rng.gen_range(0..800u64);
        let hi = lo + rng.gen_range(50..200u64);
        let attr = (round % 2) as u32;
        let step = match round % 6 {
            0 => Step::Cmp(Predicate::cmp(attr, ComparisonOp::Lt, hi)),
            1 => Step::Cmp(Predicate::between(attr, lo, hi)),
            2 | 3 => {
                let dims = [
                    [
                        Predicate::cmp(0, ComparisonOp::Gt, lo),
                        Predicate::cmp(0, ComparisonOp::Lt, hi),
                    ],
                    [
                        Predicate::cmp(1, ComparisonOp::Gt, lo / 2),
                        Predicate::cmp(1, ComparisonOp::Lt, hi + 100),
                    ],
                ];
                if round % 6 == 2 {
                    Step::Md(dims)
                } else {
                    Step::Sdplus(dims)
                }
            }
            4 => Step::Conjunction(vec![
                Predicate::cmp(0, ComparisonOp::Gt, lo),
                Predicate::cmp(0, ComparisonOp::Lt, hi),
                Predicate::cmp(1, ComparisonOp::Gt, lo / 2),
                Predicate::cmp(1, ComparisonOp::Lt, hi + 100),
                Predicate::between(0, lo, hi),
            ]),
            _ => {
                let t = next_insert;
                next_insert += 1;
                if (t as usize) < n + extra {
                    Step::Insert(t)
                } else {
                    Step::Cmp(Predicate::cmp(attr, ComparisonOp::Ge, lo))
                }
            }
        };
        steps.push(step);
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole property 1: with every injected fault retryable and the
    /// retry budget covering the injector's consecutive-fault cap, the
    /// faulty run is indistinguishable from the fault-free run — same
    /// selection results, byte-identical final knowledge bases.
    fn faulty_retried_run_matches_fault_free_run(seed in 0u64..1_000_000) {
        let (n, extra) = (260usize, 3usize);
        let cols = columns(n, extra, seed);
        let clean = PlainOracle::from_columns(cols.clone());
        // retryable(): transient + timeout faults only, at most 2 in a row,
        // so 4 attempts with no backoff always recover.
        let faulty = RetryOracle::new(
            FaultInjector::new(PlainOracle::from_columns(cols), FaultConfig::retryable(seed)),
            RetryPolicy::fast(4),
        );

        let mut e1 = two_attr_engine(n);
        let mut e2 = two_attr_engine(n);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xA5);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xA5);

        for (i, step) in workload(n, extra, seed ^ 0x77).into_iter().enumerate() {
            let (s1, s2) = match &step {
                Step::Cmp(p) => (
                    e1.select(&clean, p, &mut r1).sorted(),
                    e2.select(&faulty, p, &mut r2).sorted(),
                ),
                Step::Md(dims) => (
                    e1.select_range_md(&clean, dims, &mut r1).sorted(),
                    e2.select_range_md(&faulty, dims, &mut r2).sorted(),
                ),
                Step::Sdplus(dims) => (
                    e1.select_range_sdplus(&clean, dims, &mut r1).sorted(),
                    e2.select_range_sdplus(&faulty, dims, &mut r2).sorted(),
                ),
                Step::Conjunction(ps) => (
                    e1.select_conjunction(&clean, ps, &mut r1).sorted(),
                    e2.select_conjunction(&faulty, ps, &mut r2).sorted(),
                ),
                Step::Insert(t) => {
                    let o1 = e1.insert(&clean, *t);
                    let o2 = e2.insert(&faulty, *t);
                    prop_assert_eq!(&o1, &o2, "step {}: insert outcomes diverged", i);
                    (Vec::new(), Vec::new())
                }
            };
            prop_assert_eq!(s1, s2, "step {}: selections diverged", i);
        }

        prop_assert!(faulty.inner().injected() > 0, "workload too small to exercise faults");
        prop_assert_eq!(kb_bytes(&e1), kb_bytes(&e2), "final knowledge diverged");
    }

    /// Tentpole property 2: a failed query (non-retryable faults, no retry
    /// wrapper) leaves every attribute's knowledge base byte-identical to
    /// its pre-query state; successful queries still match the fault-free
    /// engine exactly.
    fn aborted_query_leaves_knowledge_byte_identical(seed in 0u64..1_000_000) {
        let (n, extra) = (220usize, 3usize);
        let cols = columns(n, extra, seed);
        let clean = PlainOracle::from_columns(cols.clone());
        // with_corruption(): corruption faults are non-retryable and there
        // is no retry wrapper here, so any injected fault aborts the query.
        let faulty =
            FaultInjector::new(PlainOracle::from_columns(cols), FaultConfig::with_corruption(seed));

        let mut e1 = two_attr_engine(n);
        let mut e2 = two_attr_engine(n);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0x5A);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0x5A);
        let (mut aborted, mut committed) = (0u32, 0u32);

        for (i, step) in workload(n, extra, seed ^ 0x33).into_iter().enumerate() {
            let before = kb_bytes(&e2);
            // Run the faulty engine first; mirror onto the fault-free
            // engine only when the query committed, so e1 tracks exactly
            // the queries e2 actually executed.
            match &step {
                Step::Cmp(p) => match e2.try_select(&faulty, p, &mut r2) {
                    Ok(s2) => {
                        committed += 1;
                        let s1 = e1.select(&clean, p, &mut r1);
                        prop_assert_eq!(s1.sorted(), s2.sorted(), "step {}", i);
                    }
                    Err(_) => {
                        aborted += 1;
                        prop_assert_eq!(&before, &kb_bytes(&e2), "step {}: abort mutated KB", i);
                    }
                },
                Step::Md(dims) => match e2.try_select_range_md(&faulty, dims, &mut r2) {
                    Ok(s2) => {
                        committed += 1;
                        let s1 = e1.select_range_md(&clean, dims, &mut r1);
                        prop_assert_eq!(s1.sorted(), s2.sorted(), "step {}", i);
                    }
                    Err(_) => {
                        aborted += 1;
                        prop_assert_eq!(&before, &kb_bytes(&e2), "step {}: abort mutated KB", i);
                    }
                },
                Step::Sdplus(dims) => match e2.try_select_range_sdplus(&faulty, dims, &mut r2) {
                    Ok(s2) => {
                        committed += 1;
                        let s1 = e1.select_range_sdplus(&clean, dims, &mut r1);
                        prop_assert_eq!(s1.sorted(), s2.sorted(), "step {}", i);
                    }
                    Err(_) => {
                        aborted += 1;
                        prop_assert_eq!(&before, &kb_bytes(&e2), "step {}: abort mutated KB", i);
                    }
                },
                Step::Conjunction(ps) => match e2.try_select_conjunction(&faulty, ps, &mut r2) {
                    Ok(s2) => {
                        committed += 1;
                        let s1 = e1.select_conjunction(&clean, ps, &mut r1);
                        prop_assert_eq!(s1.sorted(), s2.sorted(), "step {}", i);
                    }
                    Err(_) => {
                        aborted += 1;
                        prop_assert_eq!(&before, &kb_bytes(&e2), "step {}: abort mutated KB", i);
                    }
                },
                Step::Insert(t) => match e2.try_insert(&faulty, *t) {
                    Ok(o2) => {
                        committed += 1;
                        let o1 = e1.insert(&clean, *t);
                        prop_assert_eq!(&o1, &o2, "step {}", i);
                    }
                    Err(_) => {
                        aborted += 1;
                        prop_assert_eq!(&before, &kb_bytes(&e2), "step {}: abort mutated KB", i);
                        // e1 skips the insert too, so the engines keep
                        // executing identical committed histories.
                    }
                },
            }
            // After every round, the committed histories must agree —
            // except for inserts e2 aborted and e1 therefore skipped.
            prop_assert_eq!(&kb_bytes(&e1), &kb_bytes(&e2), "step {}: histories diverged", i);
        }
        // The schedule must exercise both outcomes to prove anything.
        prop_assert!(aborted > 0, "no query aborted — raise fault rates");
        prop_assert!(committed > 0, "every query aborted — lower fault rates");
    }
}

/// End-to-end with the real crypto stack: a corrupted ciphertext cell makes
/// the trusted machine's integrity check fail, the oracle reports
/// `Corruption`, the engine aborts the insert, and the knowledge base is
/// byte-identical to its pre-insert state.
#[test]
fn corrupted_cell_aborts_real_oracle_insert_and_preserves_knowledge() {
    use prkb_crypto::cipher::CIPHERTEXT_LEN;
    use prkb_edbms::{DataOwner, EncryptedPredicate, OracleError, PlainTable, SpOracle, TmConfig};

    let mut rng = StdRng::seed_from_u64(9);
    let values: Vec<u64> = (0..400).map(|_| rng.gen_range(0..1_000u64)).collect();
    let plain = PlainTable::single_column("t", "x", values);
    let owner = DataOwner::with_seed(10);
    let mut table = owner.encrypt_table(&plain, &mut rng);
    let tm = owner.trusted_machine(TmConfig::default());

    // Warm the index so inserts must probe separators.
    let mut engine: PrkbEngine<EncryptedPredicate> = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, 400);
    {
        let oracle = SpOracle::new(&table, &tm);
        for bound in [200u64, 500, 800] {
            let p = owner
                .trapdoor("t", &Predicate::cmp(0, ComparisonOp::Lt, bound), &mut rng)
                .expect("valid trapdoor");
            engine.select(&oracle, &p, &mut rng);
        }
    }
    assert!(
        engine.knowledge(0).expect("indexed").k() > 1,
        "warmup must split"
    );

    // A full-width garbage cell passes the arity check but fails the
    // keyed integrity tag inside the TM.
    let garbage = vec![0u8; CIPHERTEXT_LEN];
    let bad_t = table.push_encrypted_row(&[&garbage]).expect("arity ok");
    let oracle = SpOracle::new(&table, &tm);

    let before = kb_bytes(&engine);
    let err = engine
        .try_insert(&oracle, bad_t)
        .expect_err("corrupt cell must abort");
    assert!(
        matches!(
            err,
            prkb_core::QueryError::Oracle(OracleError::Corruption(_))
        ),
        "unexpected error class: {err}"
    );
    assert_eq!(
        before,
        kb_bytes(&engine),
        "aborted insert mutated the knowledge base"
    );

    // The engine stays fully usable afterwards: a clean row still routes.
    let cells = owner.encrypt_row("t", &[555], &mut rng);
    let refs: Vec<&[u8]> = cells.iter().map(Vec::as_slice).collect();
    let good_t = table.push_encrypted_row(&refs).expect("arity ok");
    let oracle = SpOracle::new(&table, &tm);
    engine
        .try_insert(&oracle, good_t)
        .expect("clean insert succeeds");
    engine.knowledge(0).expect("indexed").check_invariants();
}

/// Satellite for the durability PR: a fault landing in the *middle* of a
/// `try_eval_batch` (some verdicts already produced, the rest never
/// evaluated) must not leak the partial verdict prefix into the knowledge
/// base — abort-safety holds at batch granularity, not just per query.
#[test]
fn mid_batch_fault_leaks_no_partial_verdicts() {
    use prkb_edbms::{OracleError, PredicateKind, SelectionOracle, TupleId};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Delegates to [`PlainOracle`] but fails evaluation number `fail_at`
    /// (1-based) with a non-retryable corruption error. Batch evaluation
    /// routes through the default per-tuple `try_eval_batch`, so the fault
    /// strikes after `fail_at - 1` verdicts of the batch were produced.
    struct FailNth<'a> {
        inner: &'a PlainOracle,
        fail_at: u64,
        calls: AtomicU64,
    }

    impl SelectionOracle for FailNth<'_> {
        type Pred = Predicate;

        fn try_eval(&self, pred: &Predicate, t: TupleId) -> Result<bool, OracleError> {
            let idx = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            if idx == self.fail_at {
                return Err(OracleError::Corruption("mid-batch fault".into()));
            }
            self.inner.try_eval(pred, t)
        }

        fn kind_of(&self, pred: &Predicate) -> PredicateKind {
            self.inner.kind_of(pred)
        }

        fn n_slots(&self) -> usize {
            self.inner.n_slots()
        }

        fn is_live(&self, t: TupleId) -> bool {
            self.inner.is_live(t)
        }

        fn qpf_uses(&self) -> u64 {
            self.inner.qpf_uses()
        }
    }

    let n = 300usize;
    let clean = PlainOracle::from_columns(columns(n, 0, 71));
    let mut engine = two_attr_engine(n);
    let mut rng = StdRng::seed_from_u64(71);

    // Warm one attribute so later queries use short NS-pair batches while
    // attribute 1 still triggers full cold scans — both batch shapes get a
    // mid-batch fault below.
    for bound in [250u64, 500, 750] {
        engine.select(
            &clean,
            &Predicate::cmp(0, ComparisonOp::Lt, bound),
            &mut rng,
        );
    }

    // A cold query on attribute 1 evaluates a full-scan batch of n tuples;
    // fault its first, middle, and last evaluation in turn.
    for fail_at in [1u64, (n as u64) / 2, n as u64] {
        let faulty = FailNth {
            inner: &clean,
            fail_at,
            calls: AtomicU64::new(0),
        };
        let before = kb_bytes(&engine);
        let pred = Predicate::cmp(1, ComparisonOp::Lt, 600);
        let err = engine
            .try_select(&faulty, &pred, &mut rng)
            .expect_err("scheduled fault must abort the query");
        assert!(
            matches!(
                err,
                prkb_core::QueryError::Oracle(OracleError::Corruption(_))
            ),
            "unexpected error class: {err}"
        );
        let calls = faulty.calls.load(Ordering::Relaxed);
        assert_eq!(
            calls, fail_at,
            "fault at {fail_at}: batch must stop at the faulted evaluation"
        );
        assert_eq!(
            before,
            kb_bytes(&engine),
            "fault at {fail_at}: partial batch verdicts leaked into the KB"
        );
    }

    // Warm-path batch: a cut inside attribute 0's NS-pair evaluates a short
    // batch; fault its second evaluation.
    let faulty = FailNth {
        inner: &clean,
        fail_at: 2,
        calls: AtomicU64::new(0),
    };
    let before = kb_bytes(&engine);
    let pred = Predicate::cmp(0, ComparisonOp::Lt, 510);
    engine
        .try_select(&faulty, &pred, &mut rng)
        .expect_err("scheduled fault must abort the warm query");
    assert_eq!(
        before,
        kb_bytes(&engine),
        "warm-path partial batch leaked into the KB"
    );

    // The engine is untouched, so the same query against the clean oracle
    // commits and returns the exact expected selection.
    let sel = engine
        .try_select(&clean, &pred, &mut rng)
        .expect("clean retry commits");
    assert_eq!(sel.sorted(), clean.expected_select(&pred));
    engine.knowledge(0).expect("indexed").check_invariants();
    engine.knowledge(1).expect("indexed").check_invariants();
}
