//! End-to-end multi-dimensional integration over the real crypto pipeline:
//! PRKB(MD), PRKB(SD+), the Baseline conjunctive scan, and Logarithmic-SRC-i
//! must all return the same answers, at their expected relative costs.

use prkb::core::{EngineConfig, MdUpdatePolicy, PrkbEngine};
use prkb::edbms::select::conjunctive_scan;
use prkb::edbms::{
    ComparisonOp, DataOwner, EncryptedPredicate, PlainTable, Predicate, Schema, SelectionOracle,
    SpOracle, TmConfig,
};
use prkb::srci::{confirm, MultiDimSrci, SrciClient, SrciConfig, SrciIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: u64 = 1_000_000;

struct World {
    owner: DataOwner,
    table: prkb::edbms::EncryptedTable,
    tm: prkb::edbms::TrustedMachine,
    cols: Vec<Vec<u64>>,
}

fn world(n: usize, d: usize, seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<u64>> = (0..d)
        .map(|_| (0..n).map(|_| rng.gen_range(0..=DOMAIN)).collect())
        .collect();
    let names: Vec<String> = (0..d).map(|i| format!("c{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let plain =
        PlainTable::from_columns(Schema::new("w", &name_refs), cols.clone()).expect("rectangular");
    let owner = DataOwner::with_seed(seed ^ 0xabc);
    let table = owner.encrypt_table(&plain, &mut rng);
    let tm = owner.trusted_machine(TmConfig::default());
    World {
        owner,
        table,
        tm,
        cols,
    }
}

fn trapdoors(w: &World, ranges: &[(u64, u64)], rng: &mut StdRng) -> Vec<[EncryptedPredicate; 2]> {
    ranges
        .iter()
        .enumerate()
        .map(|(a, &(lo, hi))| {
            [
                w.owner
                    .trapdoor("w", &Predicate::cmp(a as u32, ComparisonOp::Gt, lo), rng)
                    .expect("valid"),
                w.owner
                    .trapdoor("w", &Predicate::cmp(a as u32, ComparisonOp::Lt, hi), rng)
                    .expect("valid"),
            ]
        })
        .collect()
}

fn ground_truth(cols: &[Vec<u64>], ranges: &[(u64, u64)]) -> Vec<u32> {
    (0..cols[0].len() as u32)
        .filter(|&t| {
            ranges.iter().enumerate().all(|(a, &(lo, hi))| {
                let v = cols[a][t as usize];
                lo < v && v < hi
            })
        })
        .collect()
}

#[test]
fn four_methods_agree_on_2d_queries() {
    let w = world(3_000, 2, 1);
    let oracle = SpOracle::new(&w.table, &w.tm);
    let mut rng = StdRng::seed_from_u64(2);

    let mut engine: PrkbEngine<_> = PrkbEngine::new(EngineConfig::default());
    engine.init_attr(0, 3_000);
    engine.init_attr(1, 3_000);

    let (tk, pk) = w.owner.search_keys("w", 0);
    let client = SrciClient::new(tk, pk);
    let mut srci = MultiDimSrci::new();
    for (a, col) in w.cols.iter().enumerate() {
        srci.add_dim(
            a as u32,
            SrciIndex::build(
                &client,
                SrciConfig {
                    domain: (0, DOMAIN),
                    bucket_bits: 12,
                },
                col,
            ),
        );
    }

    for round in 0..15 {
        let ranges: Vec<(u64, u64)> = (0..2)
            .map(|_| {
                let lo = rng.gen_range(0..DOMAIN - 200_000);
                (lo, lo + rng.gen_range(10_000..200_000))
            })
            .collect();
        let dims = trapdoors(&w, &ranges, &mut rng);
        let flat: Vec<EncryptedPredicate> = dims.iter().flatten().cloned().collect();
        let expected = ground_truth(&w.cols, &ranges);

        let md = engine.select_range_md(&oracle, &dims, &mut rng);
        assert_eq!(md.sorted(), expected, "MD round {round}");

        let sdp = engine.select_range_sdplus(&oracle, &dims, &mut rng);
        assert_eq!(sdp.sorted(), expected, "SD+ round {round}");

        let mut base = conjunctive_scan(&oracle, &flat);
        base.sort_unstable();
        assert_eq!(base, expected, "baseline round {round}");

        let srci_ranges: Vec<(u32, u64, u64)> = ranges
            .iter()
            .enumerate()
            .map(|(a, &(lo, hi))| (a as u32, lo + 1, hi - 1))
            .collect();
        let mut got = confirm(&oracle, &flat, &srci.candidates(&client, &srci_ranges));
        got.sort_unstable();
        assert_eq!(got, expected, "SRC-i round {round}");
    }
}

#[test]
fn md_cheaper_than_baseline_once_warmed() {
    let w = world(8_000, 3, 3);
    let oracle = SpOracle::new(&w.table, &w.tm);
    let mut rng = StdRng::seed_from_u64(4);
    let mut engine: PrkbEngine<_> = PrkbEngine::new(EngineConfig::default());
    for a in 0..3 {
        engine.init_attr(a, 8_000);
    }

    // Warm with 25 random MD queries.
    for _ in 0..25 {
        let ranges: Vec<(u64, u64)> = (0..3)
            .map(|_| {
                let lo = rng.gen_range(0..DOMAIN - 100_000);
                (lo, lo + 100_000)
            })
            .collect();
        let dims = trapdoors(&w, &ranges, &mut rng);
        engine.select_range_md(&oracle, &dims, &mut rng);
    }

    engine.config.md_policy = MdUpdatePolicy::Frozen;
    let ranges: Vec<(u64, u64)> = (0..3)
        .map(|i| (200_000 + i * 50_000, 300_000 + i * 50_000))
        .collect();
    let dims = trapdoors(&w, &ranges, &mut rng);
    let before = oracle.qpf_uses();
    let md = engine.select_range_md(&oracle, &dims, &mut rng);
    let md_cost = oracle.qpf_uses().saturating_sub(before);
    assert_eq!(md.sorted(), ground_truth(&w.cols, &ranges));
    assert!(
        md_cost < 8_000,
        "MD cost {md_cost} should be far below the 3d-predicate scan (~24k)"
    );
}

#[test]
fn md_update_policies_stay_consistent_with_plaintext() {
    for policy in [MdUpdatePolicy::PartialOnly, MdUpdatePolicy::CompleteSplits] {
        let w = world(2_000, 2, 5);
        let oracle = SpOracle::new(&w.table, &w.tm);
        let mut rng = StdRng::seed_from_u64(6);
        let mut engine: PrkbEngine<_> = PrkbEngine::new(EngineConfig {
            update: true,
            md_policy: policy,
            ..EngineConfig::default()
        });
        engine.init_attr(0, 2_000);
        engine.init_attr(1, 2_000);
        for round in 0..10 {
            let ranges: Vec<(u64, u64)> = (0..2)
                .map(|_| {
                    let lo = rng.gen_range(0..DOMAIN / 2);
                    (lo, lo + rng.gen_range(1..DOMAIN / 2))
                })
                .collect();
            let dims = trapdoors(&w, &ranges, &mut rng);
            let sel = engine.select_range_md(&oracle, &dims, &mut rng);
            assert_eq!(
                sel.sorted(),
                ground_truth(&w.cols, &ranges),
                "{policy:?} round {round}"
            );
            for a in 0..2 {
                engine.knowledge(a).unwrap().check_invariants();
            }
        }
    }
}
