//! Encrypted multimap (EMM) — the SSE building block of Logarithmic-SRC-i.
//!
//! Maps *keywords* (TDAG node ids) to byte payloads. The server stores only
//! PRF-derived 64-bit storage labels and ChaCha20-encrypted payload chunks:
//! without the token for a keyword it can neither locate nor decrypt an
//! entry. Lookups are by token; payload decryption happens at the caller
//! (the trusted machine in this deployment).

use prkb_crypto::chacha20;
use prkb_crypto::Prf;
use std::collections::HashMap;

/// Client-side keying material for one EMM.
#[derive(Clone)]
pub struct EmmClient {
    token_prf: Prf,
    payload_prf: Prf,
}

/// A lookup token handed to the server: the storage label plus the payload
/// key the trusted machine will decrypt with.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    label: u64,
    key: [u8; 32],
}

impl EmmClient {
    /// Derives an EMM client from two independent 32-byte keys.
    pub fn new(token_key: [u8; 32], payload_key: [u8; 32]) -> Self {
        EmmClient {
            token_prf: Prf::new(token_key),
            payload_prf: Prf::new(payload_key),
        }
    }

    /// Computes the lookup token for a keyword.
    pub fn token(&self, keyword: u64) -> Token {
        Token {
            label: self.token_prf.eval64(&keyword.to_le_bytes()),
            key: self.payload_prf.eval2(b"emm.payload", &keyword.to_le_bytes()),
        }
    }

    /// Encrypts one payload chunk for a keyword. `chunk_no` must be unique
    /// per (keyword, chunk) — it salts the nonce.
    pub fn seal(&self, token: &Token, chunk_no: u32, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; chacha20::NONCE_LEN];
        nonce[..4].copy_from_slice(&chunk_no.to_le_bytes());
        chacha20::encrypt(&token.key, &nonce, 1, plaintext)
    }

    /// Decrypts one payload chunk.
    pub fn open(&self, token: &Token, chunk_no: u32, ciphertext: &[u8]) -> Vec<u8> {
        // ChaCha20 is an involution under the same (key, nonce, counter).
        self.seal(token, chunk_no, ciphertext)
    }
}

impl std::fmt::Debug for EmmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmmClient").finish_non_exhaustive()
    }
}

/// The server-side encrypted multimap: label → encrypted chunks.
#[derive(Debug, Default, Clone)]
pub struct Emm {
    store: HashMap<u64, Vec<Vec<u8>>>,
}

impl Emm {
    /// An empty multimap.
    pub fn new() -> Self {
        Emm::default()
    }

    /// Builds from `(keyword, payload)` pairs, sealing each payload as one
    /// chunk under its keyword.
    pub fn build(client: &EmmClient, items: impl IntoIterator<Item = (u64, Vec<u8>)>) -> Self {
        let mut emm = Emm::new();
        for (kw, payload) in items {
            emm.append(client, kw, &payload);
        }
        emm
    }

    /// Appends a payload chunk under `keyword` (dynamic insertion path).
    pub fn append(&mut self, client: &EmmClient, keyword: u64, payload: &[u8]) {
        let token = client.token(keyword);
        let chunks = self.store.entry(token.label).or_default();
        let sealed = client.seal(&token, chunks.len() as u32, payload);
        chunks.push(sealed);
    }

    /// Server-side lookup: the encrypted chunks for a token's label.
    pub fn lookup(&self, token: &Token) -> Option<&[Vec<u8>]> {
        self.store.get(&token.label).map(Vec::as_slice)
    }

    /// Lookup + decryption (trusted-machine side), concatenating chunks.
    pub fn retrieve(&self, client: &EmmClient, keyword: u64) -> Option<Vec<u8>> {
        let token = client.token(keyword);
        let chunks = self.lookup(&token)?;
        let mut out = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            out.extend_from_slice(&client.open(&token, i as u32, c));
        }
        Some(out)
    }

    /// Number of distinct labels stored.
    pub fn n_labels(&self) -> usize {
        self.store.len()
    }

    /// Server-side storage footprint in bytes (labels + ciphertexts).
    pub fn storage_bytes(&self) -> usize {
        self.store
            .values()
            .map(|chunks| 8 + chunks.iter().map(|c| c.len() + 8).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> EmmClient {
        EmmClient::new([1u8; 32], [2u8; 32])
    }

    #[test]
    fn roundtrip() {
        let c = client();
        let emm = Emm::build(&c, vec![(7u64, b"hello".to_vec()), (9, b"world".to_vec())]);
        assert_eq!(emm.retrieve(&c, 7).unwrap(), b"hello");
        assert_eq!(emm.retrieve(&c, 9).unwrap(), b"world");
        assert_eq!(emm.retrieve(&c, 8), None);
        assert_eq!(emm.n_labels(), 2);
    }

    #[test]
    fn append_accumulates_chunks() {
        let c = client();
        let mut emm = Emm::new();
        emm.append(&c, 5, b"ab");
        emm.append(&c, 5, b"cd");
        emm.append(&c, 5, b"ef");
        assert_eq!(emm.retrieve(&c, 5).unwrap(), b"abcdef");
        assert_eq!(emm.n_labels(), 1);
    }

    #[test]
    fn server_view_is_opaque() {
        let c = client();
        let emm = Emm::build(&c, vec![(42u64, b"secret-payload".to_vec())]);
        // The stored label is not the keyword, and the ciphertext differs
        // from the plaintext.
        let token = c.token(42);
        assert_ne!(token.label, 42);
        let chunks = emm.lookup(&token).unwrap();
        assert_ne!(chunks[0].as_slice(), b"secret-payload");
        // A different client cannot find it.
        let other = EmmClient::new([9u8; 32], [9u8; 32]);
        assert!(emm.lookup(&other.token(42)).is_none());
    }

    #[test]
    fn chunk_nonces_differ() {
        let c = client();
        let mut emm = Emm::new();
        emm.append(&c, 1, b"same");
        emm.append(&c, 1, b"same");
        let token = c.token(1);
        let chunks = emm.lookup(&token).unwrap();
        assert_ne!(chunks[0], chunks[1], "distinct nonces per chunk");
        assert_eq!(emm.retrieve(&c, 1).unwrap(), b"samesame");
    }

    #[test]
    fn storage_accounting() {
        let c = client();
        let emm = Emm::build(&c, vec![(1u64, vec![0u8; 100])]);
        assert_eq!(emm.storage_bytes(), 8 + 100 + 8);
    }
}
