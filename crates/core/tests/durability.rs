//! Durability properties of the PRKB (DESIGN.md §10).
//!
//! Pinned guarantees:
//!
//! 1. **Replay equivalence** — for every injected crash point, reopening the
//!    directory recovers an engine that passes `validate()` and is
//!    byte-identical to one rebuilt from the committed-operation prefix: no
//!    acknowledged refinement is ever lost, and at most the single
//!    in-flight (never-acknowledged) operation may be missing.
//! 2. **Torn tail vs mid-log corruption** — a partial/checksum-failing
//!    *final* WAL record is silently discarded and the engine opens; a bad
//!    record with valid data after it refuses to open, as does a damaged
//!    checkpoint.
//! 3. **Atomic checkpoint rotation** — a crash at any boundary of the
//!    rotation (temp write, fsync, rename, WAL retirement) still recovers
//!    exactly the live committed state.

use prkb_core::durability::{DurableEngine, DurableError};
use prkb_core::snapshot::{self, WireCodec};
use prkb_core::{EngineConfig, MdUpdatePolicy, PrkbEngine, SpPredicate};
use prkb_edbms::durability::{CrashInjector, CrashPoint, DurabilityError, TailStatus};
use prkb_edbms::testing::PlainOracle;
use prkb_edbms::{ComparisonOp, Predicate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory (unique per test invocation, removed by the
/// guard on drop so repeated `cargo test` runs don't accrete state).
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "prkb-durability-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn kb_bytes<P: SpPredicate + WireCodec>(engine: &PrkbEngine<P>) -> Vec<Vec<u8>> {
    let mut attrs: Vec<_> = engine.attrs().collect();
    attrs.sort_unstable();
    attrs
        .iter()
        .map(|&a| snapshot::save(engine.knowledge(a).expect("attr indexed")))
        .collect()
}

fn columns(n: usize, extra: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2)
        .map(|_| (0..n + extra).map(|_| rng.gen_range(0..1_000u64)).collect())
        .collect()
}

/// Mixed workload over everything that can mutate knowledge: comparisons,
/// BETWEENs, PRKB(MD), PRKB(SD+), conjunctions, inserts, deletes.
#[derive(Debug, Clone)]
enum Step {
    Cmp(Predicate),
    Md([[Predicate; 2]; 2]),
    Sdplus([[Predicate; 2]; 2]),
    Conjunction(Vec<Predicate>),
    Insert(u32),
    Delete(u32),
}

fn workload(n: usize, extra: usize, seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    let mut next_insert = n as u32;
    for round in 0..16 {
        let lo = rng.gen_range(0..800u64);
        let hi = lo + rng.gen_range(50..200u64);
        let attr = (round % 2) as u32;
        let step = match round % 7 {
            0 => Step::Cmp(Predicate::cmp(attr, ComparisonOp::Lt, hi)),
            1 => Step::Cmp(Predicate::between(attr, lo, hi)),
            2 | 3 => {
                let dims = [
                    [
                        Predicate::cmp(0, ComparisonOp::Gt, lo),
                        Predicate::cmp(0, ComparisonOp::Lt, hi),
                    ],
                    [
                        Predicate::cmp(1, ComparisonOp::Gt, lo / 2),
                        Predicate::cmp(1, ComparisonOp::Lt, hi + 100),
                    ],
                ];
                if round % 7 == 2 {
                    Step::Md(dims)
                } else {
                    Step::Sdplus(dims)
                }
            }
            4 => Step::Conjunction(vec![
                Predicate::cmp(0, ComparisonOp::Gt, lo),
                Predicate::cmp(0, ComparisonOp::Lt, hi),
                Predicate::cmp(1, ComparisonOp::Gt, lo / 2),
                Predicate::cmp(1, ComparisonOp::Lt, hi + 100),
                Predicate::between(0, lo, hi),
            ]),
            5 => Step::Delete(rng.gen_range(0..n as u32 / 2)),
            _ => {
                let t = next_insert;
                next_insert += 1;
                if (t as usize) < n + extra {
                    Step::Insert(t)
                } else {
                    Step::Cmp(Predicate::cmp(attr, ComparisonOp::Ge, lo))
                }
            }
        };
        steps.push(step);
    }
    steps
}

/// Per-step RNG seed: both the reference and the durable engine derive the
/// exact same stream for step `i`, so their committed histories are
/// byte-identical by construction.
fn step_rng(seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn no_rotation() -> EngineConfig {
    EngineConfig {
        checkpoint_wal_records: 0,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    }
}

fn rotate_every(records: u64) -> EngineConfig {
    EngineConfig {
        checkpoint_wal_records: records,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    }
}

/// Applies one step to a plain (reference) engine. Infallible.
fn apply_ref(
    engine: &mut PrkbEngine<Predicate>,
    oracle: &PlainOracle,
    step: &Step,
    rng: &mut StdRng,
) {
    match step {
        Step::Cmp(p) => {
            engine.select(oracle, p, rng);
        }
        Step::Md(dims) => {
            engine.select_range_md(oracle, dims, rng);
        }
        Step::Sdplus(dims) => {
            engine.select_range_sdplus(oracle, dims, rng);
        }
        Step::Conjunction(ps) => {
            engine.select_conjunction(oracle, ps, rng);
        }
        Step::Insert(t) => {
            engine.insert(oracle, *t);
        }
        Step::Delete(t) => {
            engine.delete(*t);
        }
    }
}

/// Applies one step to a durable engine.
fn apply_durable(
    engine: &mut DurableEngine<Predicate>,
    oracle: &PlainOracle,
    step: &Step,
    rng: &mut StdRng,
) -> Result<(), DurableError> {
    match step {
        Step::Cmp(p) => engine.try_select(oracle, p, rng).map(|_| ()),
        Step::Md(dims) => engine.try_select_range_md(oracle, dims, rng).map(|_| ()),
        Step::Sdplus(dims) => engine
            .try_select_range_sdplus(oracle, dims, rng)
            .map(|_| ()),
        Step::Conjunction(ps) => engine.try_select_conjunction(oracle, ps, rng).map(|_| ()),
        Step::Insert(t) => engine.try_insert(oracle, *t).map(|_| ()),
        Step::Delete(t) => engine.delete(*t),
    }
}

/// Outcome of driving the crash-armed workload.
struct CrashRun {
    /// `history[r]` = reference state after `r` WAL records were committed
    /// (valid only when rotation is disabled).
    history: Vec<Vec<Vec<u8>>>,
    /// State captured *before* the failing call, i.e. the last acknowledged
    /// state (always valid).
    acked: Vec<Vec<u8>>,
    /// In-memory state right after the crash error (always valid).
    live: Vec<Vec<u8>>,
    /// Whether the injected crash actually fired.
    crashed: bool,
}

/// Drives the workload against a crash-armed durable engine and a plain
/// reference engine in lockstep, stopping at the first storage error.
fn drive(dir: &TmpDir, seed: u64, config: EngineConfig, crash: CrashInjector) -> CrashRun {
    let (n, extra) = (180usize, 3usize);
    let oracle = PlainOracle::from_columns(columns(n, extra, seed));
    let mut reference = PrkbEngine::new(config);
    let (mut durable, _) =
        DurableEngine::open_with_crash(&dir.0, config, crash).expect("fresh dir opens");

    let mut history = vec![kb_bytes(&reference)];
    let mut acked = kb_bytes(&reference);
    for attr in 0..2u32 {
        reference.init_attr(attr, n);
        history.push(kb_bytes(&reference));
        acked.clone_from(&history[history.len() - 2]);
        if durable.init_attr(attr, n).is_err() {
            return CrashRun {
                live: kb_bytes(durable.engine()),
                history,
                acked,
                crashed: true,
            };
        }
    }
    for (i, step) in workload(n, extra, seed ^ 0x77).iter().enumerate() {
        apply_ref(&mut reference, &oracle, step, &mut step_rng(seed, i));
        history.push(kb_bytes(&reference));
        acked = kb_bytes(durable.engine());
        if apply_durable(&mut durable, &oracle, step, &mut step_rng(seed, i)).is_err() {
            return CrashRun {
                live: kb_bytes(durable.engine()),
                history,
                acked,
                crashed: true,
            };
        }
    }
    CrashRun {
        acked: kb_bytes(durable.engine()),
        live: kb_bytes(durable.engine()),
        history,
        crashed: false,
    }
}

/// Reopens with injection disabled and returns the recovered byte state and
/// the number of records replayed.
fn recover(dir: &TmpDir, config: EngineConfig) -> (Vec<Vec<u8>>, u64, TailStatus) {
    let (engine, report) =
        DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("recovery must open after a crash");
    for attr in engine.engine().attrs().collect::<Vec<_>>() {
        engine
            .engine()
            .knowledge(attr)
            .expect("attr indexed")
            .check_invariants();
    }
    (
        kb_bytes(engine.engine()),
        report.records_replayed,
        report.tail,
    )
}

// ---------------------------------------------------------------------------
// 1. Replay equivalence across crash points
// ---------------------------------------------------------------------------

/// Exhaustive WAL-path sweep with rotation disabled: the record count is
/// then exactly the committed-operation count, so the recovered state must
/// be byte-identical to the reference history at index `records_replayed` —
/// the strictest possible replay-equivalence statement.
#[test]
fn wal_crash_sweep_recovers_exact_committed_prefix() {
    for point in [
        CrashPoint::BeforeWalAppend,
        CrashPoint::MidWalAppend,
        CrashPoint::AfterWalAppend,
        CrashPoint::AfterWalSync,
    ] {
        for nth in [1u64, 2, 7, 13] {
            let dir = TmpDir::new("walsweep");
            let run = drive(&dir, 42, no_rotation(), CrashInjector::at_nth(point, nth));
            assert!(run.crashed, "{point}:{nth} never fired");
            let (recovered, replayed, tail) = recover(&dir, no_rotation());
            assert!(
                (replayed as usize) < run.history.len(),
                "{point}:{nth}: replayed {replayed} past history"
            );
            assert_eq!(
                recovered, run.history[replayed as usize],
                "{point}:{nth}: recovered state is not the committed prefix"
            );
            // The last *acknowledged* state is always a prefix of recovery:
            // nothing the caller saw succeed may be lost.
            assert!(
                replayed as usize
                    >= run
                        .history
                        .iter()
                        .position(|h| *h == run.acked)
                        .expect("acked state is on the reference history"),
                "{point}:{nth}: acknowledged records lost"
            );
            if point == CrashPoint::MidWalAppend {
                assert_eq!(
                    tail,
                    TailStatus::TornDiscarded,
                    "{point}:{nth}: torn write must leave a discarded tail"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized sweep over *every* crash point with checkpoint rotation
    /// live: whatever fires wherever, the recovered engine validates and is
    /// byte-identical to the acknowledged state or to the acknowledged
    /// state plus the one in-flight (never-acknowledged) operation.
    fn randomized_crash_recovery_equivalence(
        seed in 0u64..1_000_000,
        point_idx in 0usize..CrashPoint::ALL.len(),
        nth in 1u64..10,
    ) {
        let point = CrashPoint::ALL[point_idx];
        let dir = TmpDir::new("prop");
        let config = rotate_every(5);
        let run = drive(&dir, seed, config, CrashInjector::at_nth(point, nth));
        let (recovered, _, _) = recover(&dir, config);
        if run.crashed {
            prop_assert!(
                recovered == run.acked || recovered == run.live,
                "{}:{}: recovered state is neither the acknowledged prefix nor the in-flight state",
                point, nth
            );
        } else {
            prop_assert_eq!(
                recovered, run.live,
                "{}:{}: clean shutdown must recover the final state", point, nth
            );
        }
    }
}

/// CI hook (satellite): `PRKB_CRASH_POINT=<name>[:nth]` arms the injector
/// exactly like production would; the workload must crash-recover (or run
/// clean when unset) under every point the CI matrix sweeps.
#[test]
fn env_driven_crash_point_recovers() {
    let injector = CrashInjector::from_env();
    let armed = injector.is_armed();
    let dir = TmpDir::new("env");
    let config = rotate_every(6);
    let run = drive(&dir, 7, config, injector);
    let (recovered, _, _) = recover(&dir, config);
    if run.crashed {
        assert!(
            recovered == run.acked || recovered == run.live,
            "recovered state diverged under env-armed crash injection"
        );
    } else {
        assert_eq!(recovered, run.live, "clean run must recover final state");
        assert!(
            !armed || run.crashed || recovered == run.live,
            "armed injector that never fires must still recover cleanly"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Torn tail vs mid-log corruption
// ---------------------------------------------------------------------------

fn wal_path(dir: &TmpDir, epoch: u64) -> PathBuf {
    dir.0.join(format!("wal.{epoch}.log"))
}

/// Runs a short clean workload with rotation disabled and returns the WAL
/// byte image (epoch 0).
fn clean_run(dir: &TmpDir, seed: u64) -> Vec<u8> {
    let run = drive(dir, seed, no_rotation(), CrashInjector::disabled());
    assert!(!run.crashed);
    std::fs::read(wal_path(dir, 0)).expect("wal exists")
}

#[test]
fn torn_tail_is_discarded_and_engine_opens() {
    let dir = TmpDir::new("torn");
    let bytes = clean_run(&dir, 11);
    // Chop mid-way into the final record.
    std::fs::write(wal_path(&dir, 0), &bytes[..bytes.len() - 3]).expect("write");
    let (engine, report) = DurableEngine::<Predicate>::open_with_crash(
        &dir.0,
        no_rotation(),
        CrashInjector::disabled(),
    )
    .expect("torn tail must not prevent opening");
    assert_eq!(report.tail, TailStatus::TornDiscarded);
    for attr in engine.engine().attrs().collect::<Vec<_>>() {
        engine
            .engine()
            .knowledge(attr)
            .expect("indexed")
            .check_invariants();
    }
}

#[test]
fn tail_bit_flip_is_discarded_but_mid_log_flip_refuses_to_open() {
    let dir = TmpDir::new("flip");
    let good = clean_run(&dir, 13);

    // Bit-flip inside the final record's payload: torn-tail semantics.
    let mut tail_flip = good.clone();
    let at = good.len() - 2;
    tail_flip[at] ^= 0x40;
    std::fs::write(wal_path(&dir, 0), &tail_flip).expect("write");
    let (_, report) = DurableEngine::<Predicate>::open_with_crash(
        &dir.0,
        no_rotation(),
        CrashInjector::disabled(),
    )
    .expect("tail corruption is discarded");
    assert_eq!(report.tail, TailStatus::TornDiscarded);

    // Bit-flip early in the log (valid records follow): hard error.
    let mut mid_flip = good.clone();
    mid_flip[40] ^= 0x01; // inside the first records, far from the tail
    std::fs::write(wal_path(&dir, 0), &mid_flip).expect("write");
    let err = DurableEngine::<Predicate>::open_with_crash(
        &dir.0,
        no_rotation(),
        CrashInjector::disabled(),
    )
    .expect_err("mid-log corruption must refuse to open");
    assert!(
        matches!(
            err,
            DurableError::Storage(DurabilityError::CorruptRecord { .. })
                | DurableError::CorruptWal(_)
        ),
        "unexpected error class: {err}"
    );
}

#[test]
fn corrupt_checkpoint_refuses_to_open() {
    let dir = TmpDir::new("ckptflip");
    let config = rotate_every(3);
    let run = drive(&dir, 17, config, CrashInjector::disabled());
    assert!(!run.crashed);
    let ckpt = dir.0.join("checkpoint.bin");
    let mut bytes = std::fs::read(&ckpt).expect("checkpoint exists after rotation");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).expect("write");
    let err =
        DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect_err("damaged checkpoint must refuse to open");
    assert!(
        matches!(err, DurableError::CorruptCheckpoint(_)),
        "unexpected error class: {err}"
    );
}

// ---------------------------------------------------------------------------
// 3. Checkpoint rotation
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_rotation_bumps_epoch_and_prunes_wals() {
    let dir = TmpDir::new("rotate");
    let config = rotate_every(4);
    let run = drive(&dir, 19, config, CrashInjector::disabled());
    assert!(!run.crashed);
    let (engine, report) =
        DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("reopen");
    assert!(report.checkpoint_loaded, "rotation must have checkpointed");
    assert!(report.epoch > 0, "rotation must bump the epoch");
    assert!(
        report.records_replayed < 4,
        "rotation must keep the replayed suffix short, got {}",
        report.records_replayed
    );
    assert_eq!(kb_bytes(engine.engine()), run.live);
    // Exactly one WAL file — the active epoch's — survives rotation.
    let wals: Vec<String> = std::fs::read_dir(&dir.0)
        .expect("dir")
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with("wal."))
        .collect();
    assert_eq!(
        wals,
        vec![format!("wal.{}.log", report.epoch)],
        "stale WALs linger"
    );
}

/// An injected crash at every rotation boundary still recovers the exact
/// live state: before the rename the old checkpoint+WAL pair is intact;
/// after it the new checkpoint subsumes the old WAL.
#[test]
fn checkpoint_crash_sweep_recovers_live_state() {
    for point in [
        CrashPoint::BeforeCheckpointWrite,
        CrashPoint::MidCheckpointWrite,
        CrashPoint::AfterCheckpointWrite,
        CrashPoint::AfterCheckpointSync,
        CrashPoint::AfterCheckpointRename,
        CrashPoint::BeforeWalRetire,
        CrashPoint::AfterWalRetire,
    ] {
        let dir = TmpDir::new("ckptsweep");
        let config = rotate_every(4);
        let run = drive(&dir, 23, config, CrashInjector::at(point));
        assert!(run.crashed, "{point} never fired");
        let (recovered, _, _) = recover(&dir, config);
        // The record triggering the rotation was appended+fsync'd before the
        // rotation began, so the full live state is durable at every hook.
        assert_eq!(
            recovered, run.live,
            "{point}: rotation crash lost committed state"
        );
    }
}

#[test]
fn poisoned_handle_refuses_work_and_reopen_resumes() {
    let dir = TmpDir::new("poison");
    let config = no_rotation();
    let oracle = PlainOracle::from_columns(columns(64, 0, 29));
    let (mut durable, _) = DurableEngine::open_with_crash(
        &dir.0,
        config,
        CrashInjector::at_nth(CrashPoint::AfterWalAppend, 3),
    )
    .expect("open");
    durable.init_attr(0, 64).expect("init");
    durable.init_attr(1, 64).expect("init");
    let mut rng = StdRng::seed_from_u64(1);
    let p = Predicate::cmp(0, ComparisonOp::Lt, 500);
    let err = durable
        .try_select(&oracle, &p, &mut rng)
        .expect_err("3rd append crashes");
    assert!(matches!(
        err,
        DurableError::Storage(DurabilityError::Crash(_))
    ));
    assert!(durable.is_poisoned());
    assert!(matches!(
        durable.try_select(&oracle, &p, &mut rng),
        Err(DurableError::Poisoned)
    ));
    drop(durable);
    // Reopening resumes from the durable prefix and accepts work again.
    let (mut durable, _) =
        DurableEngine::open_with_crash(&dir.0, config, CrashInjector::disabled()).expect("reopen");
    let sel = durable
        .try_select(&oracle, &p, &mut rng)
        .expect("works again");
    let expected = oracle.expected_select(&p);
    assert_eq!(sel.sorted(), expected);
}

// ---------------------------------------------------------------------------
// 4. Restart continuity and snapshot edge cases (satellite)
// ---------------------------------------------------------------------------

/// Close/reopen mid-history (twice) and keep querying: the durable engine
/// must track a continuously-running reference engine byte for byte.
#[test]
fn restart_continuity_matches_uninterrupted_reference() {
    let (n, extra) = (150usize, 2usize);
    let seed = 31u64;
    let oracle = PlainOracle::from_columns(columns(n, extra, seed));
    let steps = workload(n, extra, seed ^ 0x77);
    let config = rotate_every(5);
    let dir = TmpDir::new("restart");

    let mut reference = PrkbEngine::new(config);
    reference.init_attr(0, n);
    reference.init_attr(1, n);
    {
        let (mut d, _) =
            DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
                .expect("open");
        d.init_attr(0, n).expect("init");
        d.init_attr(1, n).expect("init");
    } // dropped: simulated shutdown right after initialization

    let mut at = 0usize;
    for stop in [5usize, 11, steps.len()] {
        let (mut d, _) = DurableEngine::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("reopen");
        assert_eq!(
            kb_bytes(d.engine()),
            kb_bytes(&reference),
            "state diverged on reopen at step {at}"
        );
        while at < stop {
            apply_ref(&mut reference, &oracle, &steps[at], &mut step_rng(seed, at));
            apply_durable(&mut d, &oracle, &steps[at], &mut step_rng(seed, at)).expect("clean run");
            at += 1;
        }
        assert_eq!(kb_bytes(d.engine()), kb_bytes(&reference));
    }
}

#[test]
fn empty_and_single_partition_kbs_roundtrip_through_wal_and_checkpoint() {
    let dir = TmpDir::new("edge");
    let config = no_rotation();
    {
        let (mut d, _) =
            DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
                .expect("open");
        d.init_attr(0, 0).expect("empty attr"); // zero tuples: k == 0
        d.init_attr(1, 40).expect("single-partition attr"); // k == 1, never split
        d.checkpoint().expect("explicit checkpoint");
        // Add post-checkpoint WAL records on top: the first tuple of the
        // empty attribute opens a solo partition (the Solo op).
        let oracle = PlainOracle::from_columns(vec![
            (0..41u64).collect(),
            (0..41u64).map(|v| v * 3).collect(),
        ]);
        d.try_insert(&oracle, 40).expect("solo insert");
        assert_eq!(d.epoch(), 1);
        assert!(d.wal_records() > 0, "insert must land in the new WAL");
    }
    let (d, report) =
        DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("reopen");
    assert!(report.checkpoint_loaded);
    assert_eq!(report.epoch, 1);
    let kb0 = d.engine().knowledge(0).expect("indexed");
    let kb1 = d.engine().knowledge(1).expect("indexed");
    kb0.check_invariants();
    kb1.check_invariants();
    assert_eq!(kb0.k(), 1, "solo partition must survive recovery");
    assert_eq!(kb1.k(), 1);
    assert_eq!(kb0.pop().rank_of_tuple(40), Some(0));
}

/// A max-fanout MD grid (CompleteSplits policy: every dimension splits on
/// both bounds of every range) through checkpoint + WAL replay.
#[test]
fn max_fanout_md_grid_roundtrips_through_checkpoint_and_wal() {
    let n = 400usize;
    let mut rng = StdRng::seed_from_u64(37);
    let cols: Vec<Vec<u64>> = (0..2)
        .map(|_| (0..n).map(|_| rng.gen_range(0..1_000u64)).collect())
        .collect();
    let oracle = PlainOracle::from_columns(cols);
    let config = EngineConfig {
        md_policy: MdUpdatePolicy::CompleteSplits,
        checkpoint_wal_records: 0,
        checkpoint_wal_bytes: 0,
        ..EngineConfig::default()
    };
    let dir = TmpDir::new("mdgrid");
    let live = {
        let (mut d, _) = DurableEngine::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("open");
        d.init_attr(0, n).expect("init");
        d.init_attr(1, n).expect("init");
        let mut qrng = StdRng::seed_from_u64(38);
        for i in 0..8u64 {
            let lo = i * 100;
            let dims = [
                [
                    Predicate::cmp(0, ComparisonOp::Gt, lo),
                    Predicate::cmp(0, ComparisonOp::Lt, lo + 250),
                ],
                [
                    Predicate::cmp(1, ComparisonOp::Gt, lo / 2),
                    Predicate::cmp(1, ComparisonOp::Lt, lo + 400),
                ],
            ];
            d.try_select_range_md(&oracle, &dims, &mut qrng)
                .expect("clean");
        }
        // Split state across a checkpoint AND trailing WAL records.
        d.checkpoint().expect("rotate");
        let mut qrng2 = StdRng::seed_from_u64(39);
        let dims = [
            [
                Predicate::cmp(0, ComparisonOp::Gt, 111),
                Predicate::cmp(0, ComparisonOp::Lt, 777),
            ],
            [
                Predicate::cmp(1, ComparisonOp::Gt, 222),
                Predicate::cmp(1, ComparisonOp::Lt, 888),
            ],
        ];
        d.try_select_range_md(&oracle, &dims, &mut qrng2)
            .expect("clean");
        assert!(
            d.engine().knowledge(0).expect("indexed").k() > 8,
            "grid too coarse to be a fan-out test"
        );
        kb_bytes(d.engine())
    };
    let (d, report) =
        DurableEngine::<Predicate>::open_with_crash(&dir.0, config, CrashInjector::disabled())
            .expect("reopen");
    assert!(report.checkpoint_loaded);
    assert_eq!(kb_bytes(d.engine()), live, "fan-out grid diverged");
}
