//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), validated against RFC 4231 vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, applied at finalization.
    okey: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys longer
    /// than the block size are hashed first, per the specification).
    pub fn new(key: &[u8]) -> Self {
        let mut kblock = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            kblock[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            kblock[..key.len()].copy_from_slice(key);
        }

        let mut ikey = [0u8; BLOCK_LEN];
        let mut okey = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ikey[i] = kblock[i] ^ 0x36;
            okey[i] = kblock[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ikey);
        HmacSha256 { inner, okey }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.okey);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-shape tag comparison (no early exit on the data bytes).
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let computed = Self::mac(key, data);
        if tag.len() != computed.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in computed.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&HmacSha256::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..16]));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }
}
