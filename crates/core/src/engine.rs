//! The PRKB engine: per-attribute knowledge bases behind one façade.
//!
//! This is the service-provider-side entry point a deployment would embed:
//! it owns one [`Knowledge`] per indexed attribute, routes incoming
//! trapdoors (comparison vs BETWEEN, single vs multi-dimensional), and
//! keeps the index maintained across inserts and deletes.

use crate::between::try_process_between;
use crate::insert::{apply_insert, decide_insert, InsertDecision, InsertOutcome};
use crate::knowledge::Knowledge;
use crate::md::{try_process_range_md, MdDim, MdUpdatePolicy};
use crate::metrics::{self, QueryKind};
use crate::sd::try_process_comparison;
use crate::sdplus::try_process_range_sdplus;
use crate::selection::Selection;
use crate::traits::SpPredicate;
use prkb_edbms::{AttrId, OracleError, PredicateKind, SelectionOracle, TupleId};
use rand::Rng;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a fallible engine entry point gave up.
#[derive(Debug)]
pub enum QueryError {
    /// The SP↔TM boundary failed (transport, decryption, circuit breaker).
    Oracle(OracleError),
    /// A trapdoor references an attribute that was never initialized —
    /// indexing decisions are made at upload time in this engine.
    AttrNotInitialized(AttrId),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Oracle(e) => write!(f, "oracle failure: {e}"),
            QueryError::AttrNotInitialized(a) => write!(f, "attribute {a} not initialized"),
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Oracle(e) => Some(e),
            QueryError::AttrNotInitialized(_) => None,
        }
    }
}

impl From<OracleError> for QueryError {
    fn from(e: OracleError) -> Self {
        QueryError::Oracle(e)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Whether single-dimension queries refine the index (`updatePRKB`).
    /// Disable for the paper's "static PRKB" experiments.
    pub update: bool,
    /// Refinement policy for multi-dimensional queries.
    pub md_policy: MdUpdatePolicy,
    /// Worker threads for batched QPF evaluation (`None` defers to the
    /// `PRKB_THREADS` environment variable). The engine itself is
    /// oracle-agnostic: deployments apply this knob when pairing the engine
    /// with its oracle, e.g. `SpOracle::with_threads`. Thread count never
    /// affects results or QPF-use counts — only wall-clock time.
    pub threads: Option<usize>,
    /// Checkpoint rotation policy: rotate once the active write-ahead log
    /// holds at least this many records (`0` disables count-based
    /// rotation). Consulted only by
    /// [`DurableEngine`](crate::durability::DurableEngine); a plain
    /// [`PrkbEngine`] never checkpoints.
    pub checkpoint_wal_records: u64,
    /// Checkpoint rotation policy: rotate once the active write-ahead log
    /// exceeds this many bytes (`0` disables size-based rotation).
    pub checkpoint_wal_bytes: u64,
    /// Group commit: the most refinement records one fsync covers. A flush
    /// leader takes at most this many pending payloads per batch, bounding
    /// tail latency and crash-exposure granularity under burst. Consulted
    /// only by [`ShardCommitter`](crate::durability::ShardCommitter); the
    /// coarse [`DurableEngine`](crate::durability::DurableEngine) always
    /// fsyncs per record. Clamped to at least 1.
    pub group_commit_records: u64,
    /// Group commit: how long (in microseconds) a committer parked behind
    /// an in-flight flush sleeps before re-checking for leadership — a
    /// missed-wakeup guard, clamped to 50µs..=50ms. Leadership itself is
    /// immediate: the first waiter to find the WAL idle flushes right away,
    /// and batches form from commits that arrived during the previous
    /// flush.
    pub group_commit_max_wait_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            update: true,
            md_policy: MdUpdatePolicy::PartialOnly,
            threads: None,
            checkpoint_wal_records: 4096,
            checkpoint_wal_bytes: 4 << 20,
            group_commit_records: 32,
            group_commit_max_wait_us: 200,
        }
    }
}

/// The per-table PRKB engine.
#[derive(Debug)]
pub struct PrkbEngine<P> {
    kbs: HashMap<AttrId, Knowledge<P>>,
    /// Engine configuration (mutable between queries).
    pub config: EngineConfig,
}

impl<P: SpPredicate> PrkbEngine<P> {
    /// Creates an engine with no attribute indexed yet.
    pub fn new(config: EngineConfig) -> Self {
        PrkbEngine {
            kbs: HashMap::new(),
            config,
        }
    }

    /// `initPRKB` for one attribute over a table of `n` tuples. Call once
    /// per attribute, right after the encrypted table is uploaded.
    pub fn init_attr(&mut self, attr: AttrId, n: usize) {
        self.kbs.insert(attr, Knowledge::init(n));
    }

    /// The knowledge base for `attr`, if initialized.
    pub fn knowledge(&self, attr: AttrId) -> Option<&Knowledge<P>> {
        self.kbs.get(&attr)
    }

    /// Attributes currently indexed.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.kbs.keys().copied()
    }

    /// Processes a single-predicate selection, dispatching on the trapdoor's
    /// SP-visible kind (comparison vs BETWEEN).
    ///
    /// Infallible wrapper over [`try_select`](Self::try_select).
    ///
    /// # Panics
    /// Panics if the predicate's attribute was never initialized — indexing
    /// decisions are made at upload time in this engine — or on oracle
    /// failure.
    pub fn select<O, R>(&mut self, oracle: &O, pred: &P, rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        match self.try_select(oracle, pred, rng) {
            Ok(sel) => sel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Processes a single-predicate selection, dispatching on the trapdoor's
    /// SP-visible kind (comparison vs BETWEEN).
    ///
    /// # Errors
    /// [`QueryError::AttrNotInitialized`] for an unindexed attribute;
    /// [`QueryError::Oracle`] on SP↔TM failure. Abort-safe: the
    /// single-dimension pipelines evaluate every trapdoor before committing
    /// any refinement, so on error the attribute's knowledge is untouched.
    pub fn try_select<O, R>(
        &mut self,
        oracle: &O,
        pred: &P,
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let kind = match oracle.kind_of(pred) {
            PredicateKind::Comparison => QueryKind::Comparison,
            PredicateKind::Between => QueryKind::Between,
        };
        let sel = self.try_select_impl(oracle, pred, rng)?;
        metrics::global().record_query(kind, &sel.stats);
        Ok(sel)
    }

    /// Non-recording twin of [`try_select`](Self::try_select): composite
    /// queries (conjunctions) run their parts through this so the global
    /// metrics registry counts each user-visible query exactly once.
    fn try_select_impl<O, R>(
        &mut self,
        oracle: &O,
        pred: &P,
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let update = self.config.update;
        let kb = self
            .kbs
            .get_mut(&pred.attr())
            .ok_or(QueryError::AttrNotInitialized(pred.attr()))?;
        Ok(match oracle.kind_of(pred) {
            PredicateKind::Comparison => try_process_comparison(kb, oracle, pred, rng, update)?,
            PredicateKind::Between => try_process_between(kb, oracle, pred, rng, update)?,
        })
    }

    /// Processes a d-dimensional range query with PRKB(MD) (paper §6.2).
    ///
    /// `dims` holds the two comparison trapdoors of each dimension.
    ///
    /// Infallible wrapper over
    /// [`try_select_range_md`](Self::try_select_range_md).
    ///
    /// # Panics
    /// Panics on uninitialized attributes, duplicate dimensions, or oracle
    /// failure.
    pub fn select_range_md<O, R>(&mut self, oracle: &O, dims: &[[P; 2]], rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        match self.try_select_range_md(oracle, dims, rng) {
            Ok(sel) => sel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Processes a d-dimensional range query with PRKB(MD) (paper §6.2).
    ///
    /// # Errors
    /// See [`try_select`](Self::try_select). Abort-safe: PRKB(MD) stages
    /// every split and commits only after the whole query has evaluated.
    ///
    /// # Panics
    /// Panics on duplicate dimensions (programmer error).
    pub fn try_select_range_md<O, R>(
        &mut self,
        oracle: &O,
        dims: &[[P; 2]],
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let sel = self.try_select_range_md_impl(oracle, dims, rng)?;
        metrics::global().record_query(QueryKind::Md, &sel.stats);
        Ok(sel)
    }

    /// Non-recording twin of
    /// [`try_select_range_md`](Self::try_select_range_md) (see
    /// [`try_select_impl`](Self::try_select_impl)).
    fn try_select_range_md_impl<O, R>(
        &mut self,
        oracle: &O,
        dims: &[[P; 2]],
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let policy = self.config.md_policy;
        self.with_dims(dims, |md_dims| {
            try_process_range_md(md_dims, oracle, rng, policy)
        })?
        .map_err(QueryError::Oracle)
    }

    /// Processes a d-dimensional range query with the naive PRKB(SD+)
    /// extension (paper §6, baseline).
    ///
    /// Infallible wrapper over
    /// [`try_select_range_sdplus`](Self::try_select_range_sdplus).
    ///
    /// # Panics
    /// Panics on uninitialized attributes, duplicate dimensions, or oracle
    /// failure.
    pub fn select_range_sdplus<O, R>(
        &mut self,
        oracle: &O,
        dims: &[[P; 2]],
        rng: &mut R,
    ) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        match self.try_select_range_sdplus(oracle, dims, rng) {
            Ok(sel) => sel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Processes a d-dimensional range query with the naive PRKB(SD+)
    /// extension (paper §6, baseline).
    ///
    /// # Errors
    /// See [`try_select`](Self::try_select). Abort-safe: SD+ snapshots every
    /// dimension's knowledge and restores it wholesale on error.
    ///
    /// # Panics
    /// Panics on duplicate dimensions (programmer error).
    pub fn try_select_range_sdplus<O, R>(
        &mut self,
        oracle: &O,
        dims: &[[P; 2]],
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let update = self.config.update;
        let sel = self
            .with_dims(dims, |md_dims| {
                try_process_range_sdplus(md_dims, oracle, rng, update)
            })?
            .map_err(QueryError::Oracle)?;
        metrics::global().record_query(QueryKind::Sdplus, &sel.stats);
        Ok(sel)
    }

    /// Moves the named attributes' knowledge out of the map, runs `f`, and
    /// reinserts the knowledge unconditionally — also when `f` reports a
    /// failure, so an abort never strands an attribute's index.
    fn with_dims<T>(
        &mut self,
        dims: &[[P; 2]],
        f: impl FnOnce(&mut [MdDim<P>]) -> T,
    ) -> Result<T, QueryError> {
        // Validate before removing anything: a missing attribute must leave
        // the map untouched.
        for pair in dims {
            let attr = pair[0].attr();
            assert_eq!(
                attr,
                pair[1].attr(),
                "a dimension's trapdoors must share an attribute"
            );
            if !self.kbs.contains_key(&attr) {
                return Err(QueryError::AttrNotInitialized(attr));
            }
        }
        let mut md_dims: Vec<MdDim<P>> = Vec::with_capacity(dims.len());
        for pair in dims {
            let attr = pair[0].attr();
            let knowledge = self
                .kbs
                .remove(&attr)
                .unwrap_or_else(|| panic!("attribute {attr} listed in two dimensions"));
            md_dims.push(MdDim {
                knowledge,
                preds: pair.clone(),
            });
        }
        let out = f(&mut md_dims);
        for (dim, pair) in md_dims.into_iter().zip(dims) {
            self.kbs.insert(pair[0].attr(), dim.knowledge);
        }
        Ok(out)
    }

    /// Processes an arbitrary conjunction of trapdoors — the execution
    /// entry point for parsed SQL selections (`prkb_edbms::sql`).
    ///
    /// Attributes contributing exactly two comparison trapdoors are
    /// recognized as range dimensions and — when there are at least two such
    /// dimensions — executed with PRKB(MD); every remaining trapdoor
    /// (BETWEENs, lone comparisons) runs through the single-dimension
    /// pipeline, and the result sets are intersected.
    ///
    /// # Panics
    /// Panics if a referenced attribute was never initialized, or on oracle
    /// failure. Infallible wrapper over
    /// [`try_select_conjunction`](Self::try_select_conjunction).
    pub fn select_conjunction<O, R>(&mut self, oracle: &O, preds: &[P], rng: &mut R) -> Selection
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        match self.try_select_conjunction(oracle, preds, rng) {
            Ok(sel) => sel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`select_conjunction`](Self::select_conjunction).
    ///
    /// # Errors
    /// See [`try_select`](Self::try_select). Abort-safe: the conjunction
    /// commits refinements part by part (the MD grid, then each remaining
    /// trapdoor), so every involved attribute's knowledge is snapshotted up
    /// front and restored wholesale if any later part fails.
    pub fn try_select_conjunction<O, R>(
        &mut self,
        oracle: &O,
        preds: &[P],
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        let n = oracle.n_slots();
        if preds.is_empty() {
            let tuples = (0..n as TupleId).filter(|&t| oracle.is_live(t)).collect();
            return Ok(Selection {
                tuples,
                ..Selection::default()
            });
        }

        // Rollback snapshot of every attribute the conjunction can touch.
        let saved: Vec<(AttrId, Knowledge<P>)> = {
            let mut attrs: Vec<AttrId> = preds.iter().map(SpPredicate::attr).collect();
            attrs.sort_unstable();
            attrs.dedup();
            attrs
                .into_iter()
                .filter_map(|a| self.kbs.get(&a).map(|kb| (a, kb.clone())))
                .collect()
        };
        match self.conjunction_inner(oracle, preds, rng) {
            Ok(sel) => {
                metrics::global().record_query(QueryKind::Conjunction, &sel.stats);
                Ok(sel)
            }
            Err(e) => {
                for (attr, kb) in saved {
                    self.kbs.insert(attr, kb);
                }
                Err(e)
            }
        }
    }

    fn conjunction_inner<O, R>(
        &mut self,
        oracle: &O,
        preds: &[P],
        rng: &mut R,
    ) -> Result<Selection, QueryError>
    where
        O: SelectionOracle<Pred = P>,
        R: Rng,
    {
        use std::collections::BTreeMap;

        let n = oracle.n_slots();
        let qpf_before = oracle.qpf_uses();
        let k_before: usize = self.kbs.values().map(Knowledge::k).sum();

        // Group comparison trapdoors per attribute, preserving order.
        let mut cmp_by_attr: BTreeMap<AttrId, Vec<P>> = BTreeMap::new();
        let mut singles: Vec<P> = Vec::new();
        for p in preds {
            match oracle.kind_of(p) {
                PredicateKind::Comparison => {
                    cmp_by_attr.entry(p.attr()).or_default().push(p.clone())
                }
                PredicateKind::Between => singles.push(p.clone()),
            }
        }
        let mut dims: Vec<[P; 2]> = Vec::new();
        for (_, mut group) in cmp_by_attr {
            // At most one pair per attribute: the MD grid owns each
            // attribute's knowledge exclusively, so further comparisons on
            // the same attribute run through the single-dimension pipeline.
            if group.len() >= 2 {
                let b = group.pop().expect("len >= 2");
                let a = group.pop().expect("len >= 1");
                dims.push([a, b]);
            }
            singles.extend(group);
        }

        let mut hits: Vec<u32> = vec![0; n];
        let mut parts = 0u32;
        let mut agg = crate::selection::QueryStats::default();
        if dims.len() >= 2 {
            let sel = self.try_select_range_md_impl(oracle, &dims, rng)?;
            agg.absorb(&sel.stats);
            parts += 1;
            for t in sel.tuples {
                hits[t as usize] += 1;
            }
        } else {
            // Not enough dimensions for the grid: run them individually.
            singles.extend(dims.into_iter().flatten());
        }
        for p in singles {
            let sel = self.try_select_impl(oracle, &p, rng)?;
            agg.absorb(&sel.stats);
            parts += 1;
            for t in sel.tuples {
                hits[t as usize] += 1;
            }
        }

        let tuples: Vec<TupleId> = (0..n as TupleId)
            .filter(|&t| hits[t as usize] == parts)
            .collect();
        // Per-part breakdown sums; the envelope figures are measured across
        // the whole conjunction.
        agg.qpf_uses = oracle.qpf_uses().saturating_sub(qpf_before);
        agg.k_before = k_before;
        agg.k_after = self.kbs.values().map(Knowledge::k).sum();
        Ok(Selection { tuples, stats: agg })
    }

    /// Checks the named attributes' knowledge **out** of this engine into a
    /// detached sub-engine (same configuration), for a concurrent scheduler
    /// that wants to hold the shared engine's lock only while moving
    /// knowledge, not while spending QPF uses on evaluation.
    ///
    /// The returned engine owns exactly the deduplicated `attrs`; this
    /// engine no longer knows them until [`attach`](Self::attach) moves the
    /// (possibly refined) knowledge back. Callers are responsible for
    /// tracking which attributes are detached — a second `detach_attrs` on
    /// the same attribute reports it as uninitialized.
    ///
    /// # Errors
    /// [`QueryError::AttrNotInitialized`] if any attribute is absent; no
    /// knowledge is moved in that case.
    pub fn detach_attrs(&mut self, attrs: &[AttrId]) -> Result<PrkbEngine<P>, QueryError> {
        let mut wanted: Vec<AttrId> = attrs.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        for &attr in &wanted {
            if !self.kbs.contains_key(&attr) {
                return Err(QueryError::AttrNotInitialized(attr));
            }
        }
        let mut sub = PrkbEngine::new(self.config);
        for attr in wanted {
            let kb = self.kbs.remove(&attr).expect("checked above");
            sub.kbs.insert(attr, kb);
        }
        Ok(sub)
    }

    /// Moves every attribute of a detached sub-engine (see
    /// [`detach_attrs`](Self::detach_attrs)) back into this engine,
    /// replacing any same-named attribute wholesale.
    pub fn attach(&mut self, sub: PrkbEngine<P>) {
        for (attr, kb) in sub.kbs {
            self.kbs.insert(attr, kb);
        }
    }

    /// Routes a freshly inserted tuple into every indexed attribute
    /// (paper §7.1; O(β lg k) QPF uses in total).
    ///
    /// Infallible wrapper over [`try_insert`](Self::try_insert).
    ///
    /// # Panics
    /// Panics on oracle failure.
    pub fn insert<O>(&mut self, oracle: &O, t: TupleId) -> Vec<(AttrId, InsertOutcome)>
    where
        O: SelectionOracle<Pred = P>,
    {
        match self.try_insert(oracle, t) {
            Ok(outcomes) => outcomes,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`insert`](Self::insert).
    ///
    /// # Errors
    /// [`QueryError::Oracle`] on SP↔TM failure. Abort-safe: routing
    /// decisions for *all* attributes are computed read-only first; the
    /// knowledge bases are mutated only after every oracle call of the
    /// whole insert has succeeded.
    pub fn try_insert<O>(
        &mut self,
        oracle: &O,
        t: TupleId,
    ) -> Result<Vec<(AttrId, InsertOutcome)>, QueryError>
    where
        O: SelectionOracle<Pred = P>,
    {
        // Deterministic attribute order keeps the oracle call sequence (and
        // with it any injected-fault schedule) reproducible across runs.
        let qpf_before = oracle.qpf_uses();
        let mut attrs: Vec<AttrId> = self.kbs.keys().copied().collect();
        attrs.sort_unstable();

        // Decision phase: read-only, all oracle calls happen here.
        let mut decisions: Vec<(AttrId, InsertDecision)> = Vec::with_capacity(attrs.len());
        for &attr in &attrs {
            let kb = &self.kbs[&attr];
            decisions.push((attr, decide_insert(kb, oracle, t)?));
        }

        // Commit phase: infallible.
        let outcomes: Vec<(AttrId, InsertOutcome)> = decisions
            .into_iter()
            .map(|(attr, decision)| {
                let kb = self.kbs.get_mut(&attr).expect("attr enumerated above");
                (attr, apply_insert(kb, t, decision))
            })
            .collect();
        let parked = outcomes
            .iter()
            .any(|(_, o)| matches!(o, InsertOutcome::Parked { .. }));
        metrics::global().record_insert(oracle.qpf_uses().saturating_sub(qpf_before), parked);
        Ok(outcomes)
    }

    /// Removes a deleted tuple from every indexed attribute (paper §7.2).
    pub fn delete(&mut self, t: TupleId) {
        for kb in self.kbs.values_mut() {
            kb.delete(t);
        }
    }

    /// Turns op journaling on or off for every attribute's knowledge base
    /// (see [`Knowledge::set_recording`]). Attributes initialized later
    /// start with journaling off; durable wrappers re-enable it after each
    /// [`init_attr`](Self::init_attr).
    pub fn set_recording(&mut self, on: bool) {
        for kb in self.kbs.values_mut() {
            kb.set_recording(on);
        }
    }

    /// Drains every attribute's op journal, attribute-sorted (ops across
    /// attributes are independent — each applies to its own knowledge base —
    /// so sorting keeps the drained sequence deterministic while preserving
    /// each attribute's commit order).
    pub fn take_ops(&mut self) -> Vec<(AttrId, crate::knowledge::RefinementOp<P>)> {
        let mut attrs: Vec<AttrId> = self.kbs.keys().copied().collect();
        attrs.sort_unstable();
        let mut out = Vec::new();
        for attr in attrs {
            let kb = self.kbs.get_mut(&attr).expect("attr enumerated above");
            out.extend(kb.take_ops().into_iter().map(|op| (attr, op)));
        }
        out
    }

    /// Mutable knowledge access for the durability layer's replay path.
    pub(crate) fn knowledge_mut(&mut self, attr: AttrId) -> Option<&mut Knowledge<P>> {
        self.kbs.get_mut(&attr)
    }

    /// Installs a knowledge base restored from a checkpoint.
    pub(crate) fn restore_attr(&mut self, attr: AttrId, kb: Knowledge<P>) {
        self.kbs.insert(attr, kb);
    }

    /// Total index storage across attributes (Table 3 accounting).
    pub fn storage_bytes(&self) -> usize {
        self.kbs.values().map(Knowledge::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prkb_edbms::testing::PlainOracle;
    use prkb_edbms::{ComparisonOp, Predicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_2d(n: usize, seed: u64) -> (PrkbEngine<Predicate>, PlainOracle) {
        let mut rng = StdRng::seed_from_u64(seed);
        let columns: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(0..1000u64)).collect())
            .collect();
        let oracle = PlainOracle::from_columns(columns);
        let mut engine = PrkbEngine::new(EngineConfig::default());
        engine.init_attr(0, n);
        engine.init_attr(1, n);
        (engine, oracle)
    }

    #[test]
    fn select_dispatches_comparison_and_between() {
        let (mut engine, oracle) = engine_2d(500, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let c = Predicate::cmp(0, ComparisonOp::Lt, 300);
        assert_eq!(
            engine.select(&oracle, &c, &mut rng).sorted(),
            oracle.expected_select(&c)
        );
        let b = Predicate::between(1, 100, 400);
        assert_eq!(
            engine.select(&oracle, &b, &mut rng).sorted(),
            oracle.expected_select(&b)
        );
    }

    #[test]
    fn md_and_sdplus_through_engine() {
        let (mut engine, oracle) = engine_2d(800, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [
            [
                Predicate::cmp(0, ComparisonOp::Gt, 200),
                Predicate::cmp(0, ComparisonOp::Lt, 600),
            ],
            [
                Predicate::cmp(1, ComparisonOp::Gt, 300),
                Predicate::cmp(1, ComparisonOp::Lt, 700),
            ],
        ];
        let flat: Vec<Predicate> = dims.iter().flatten().cloned().collect();
        let md = engine.select_range_md(&oracle, &dims, &mut rng);
        assert_eq!(md.sorted(), oracle.expected_conjunction(&flat));
        let sdp = engine.select_range_sdplus(&oracle, &dims, &mut rng);
        assert_eq!(sdp.sorted(), oracle.expected_conjunction(&flat));
        // Knowledge must be back in place for single-dim queries.
        let c = Predicate::cmp(0, ComparisonOp::Lt, 500);
        assert_eq!(
            engine.select(&oracle, &c, &mut rng).sorted(),
            oracle.expected_select(&c)
        );
    }

    #[test]
    fn insert_and_delete_maintain_all_attrs() {
        let (mut engine, mut oracle) = engine_2d(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Warm both attributes.
        for bound in [100u64, 500, 900] {
            for attr in 0..2u32 {
                let p = Predicate::cmp(attr, ComparisonOp::Lt, bound);
                engine.select(&oracle, &p, &mut rng);
            }
        }
        let t = oracle.insert(&[450, 777]);
        let outcomes = engine.insert(&oracle, t);
        assert_eq!(outcomes.len(), 2);
        let p = Predicate::cmp(0, ComparisonOp::Lt, 460);
        assert_eq!(
            engine.select(&oracle, &p, &mut rng).sorted(),
            oracle.expected_select(&p)
        );

        oracle.delete(t);
        engine.delete(t);
        assert_eq!(
            engine.select(&oracle, &p, &mut rng).sorted(),
            oracle.expected_select(&p)
        );
    }

    #[test]
    fn storage_accounting_scales_with_k() {
        let (mut engine, oracle) = engine_2d(1000, 7);
        let base = engine.storage_bytes();
        let mut rng = StdRng::seed_from_u64(8);
        for bound in [100u64, 300, 500, 700, 900] {
            engine.select(
                &oracle,
                &Predicate::cmp(0, ComparisonOp::Lt, bound),
                &mut rng,
            );
        }
        assert!(engine.storage_bytes() > base);
    }

    #[test]
    fn select_conjunction_mixes_shapes() {
        let (mut engine, oracle) = engine_2d(600, 11);
        let mut rng = StdRng::seed_from_u64(12);
        // 2 range dims + a BETWEEN + a lone comparison on attr 0.
        let preds = vec![
            Predicate::cmp(0, ComparisonOp::Gt, 100),
            Predicate::cmp(0, ComparisonOp::Lt, 800),
            Predicate::cmp(1, ComparisonOp::Gt, 200),
            Predicate::cmp(1, ComparisonOp::Lt, 900),
            Predicate::between(0, 150, 700),
            Predicate::cmp(1, ComparisonOp::Ge, 250),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
        // Repeat: must stay correct with the now-warmed index.
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    fn select_conjunction_empty_is_full_scan() {
        let (mut engine, oracle) = engine_2d(50, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let sel = engine.select_conjunction(&oracle, &[], &mut rng);
        assert_eq!(sel.tuples.len(), 50);
        assert_eq!(sel.stats.qpf_uses, 0);
    }

    #[test]
    fn select_conjunction_many_predicates_per_attr() {
        // Regression (found by the `differ` harness): four comparisons on
        // one attribute must not build two MD dims over the same knowledge.
        let (mut engine, oracle) = engine_2d(300, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let preds = vec![
            Predicate::cmp(1, ComparisonOp::Gt, 100),
            Predicate::cmp(1, ComparisonOp::Lt, 900),
            Predicate::cmp(1, ComparisonOp::Ge, 200),
            Predicate::cmp(1, ComparisonOp::Le, 800),
            Predicate::cmp(0, ComparisonOp::Gt, 50),
            Predicate::cmp(0, ComparisonOp::Lt, 950),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    fn select_conjunction_same_direction_pair() {
        // Two same-direction comparisons on one attribute are still a valid
        // conjunction (not a range) and must evaluate correctly.
        let (mut engine, oracle) = engine_2d(400, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let preds = vec![
            Predicate::cmp(0, ComparisonOp::Lt, 700),
            Predicate::cmp(0, ComparisonOp::Lt, 300),
            Predicate::cmp(1, ComparisonOp::Gt, 100),
            Predicate::cmp(1, ComparisonOp::Gt, 400),
        ];
        let sel = engine.select_conjunction(&oracle, &preds, &mut rng);
        assert_eq!(sel.sorted(), oracle.expected_conjunction(&preds));
    }

    #[test]
    fn detach_evaluate_attach_matches_inline() {
        // The scheduler's lock discipline: queries run on a detached
        // sub-engine and the refined knowledge is attached back. Results and
        // QPF must match the inline path exactly.
        let (mut engine, oracle) = engine_2d(400, 17);
        let (mut inline_engine, inline_oracle) = engine_2d(400, 17);
        for (i, bound) in [120u64, 640, 300, 880, 300].into_iter().enumerate() {
            let p = Predicate::cmp((i % 2) as u32, ComparisonOp::Lt, bound);
            let mut sub = engine.detach_attrs(&[p.attr()]).expect("detach");
            assert!(
                engine.knowledge(p.attr()).is_none(),
                "knowledge moved out while detached"
            );
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let sel = sub.try_select(&oracle, &p, &mut rng).expect("select");
            engine.attach(sub);
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let want = inline_engine
                .try_select(&inline_oracle, &p, &mut rng)
                .expect("inline");
            assert_eq!(sel.sorted(), want.sorted());
            assert_eq!(sel.stats.qpf_uses, want.stats.qpf_uses);
            engine
                .knowledge(p.attr())
                .expect("attached back")
                .validate()
                .expect("valid after attach");
        }
    }

    #[test]
    fn detach_missing_attr_moves_nothing() {
        let (mut engine, _) = engine_2d(100, 19);
        let err = engine.detach_attrs(&[0, 7]).expect_err("attr 7 missing");
        assert!(matches!(err, QueryError::AttrNotInitialized(7)));
        assert!(engine.knowledge(0).is_some(), "attr 0 must not be stranded");
    }

    #[test]
    #[should_panic(expected = "not initialized")]
    fn uninitialized_attr_panics() {
        let (mut engine, oracle) = engine_2d(100, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let p = Predicate::cmp(7, ComparisonOp::Lt, 5);
        let _ = engine.select(&oracle, &p, &mut rng);
    }
}
